"""The operator pipeline IR (paper Fig. 1 as data).

One declarative stage graph describes the FEM spatial operator; the
solver executes it functionally, the accelerator co-simulator executes
it cycle-accurately with real payloads, and the workload model derives
per-stage operation counts from it. Fusion levels are graph rewrites.

- :mod:`repro.pipeline.ir` — :class:`Stage` / :class:`OperatorPipeline`
  and the lowering to :class:`~repro.dataflow.graph.DataflowGraph`;
- :mod:`repro.pipeline.kernels` — the kernel registry and the bound
  :class:`PipelineContext`;
- :mod:`repro.pipeline.navier_stokes` — the NS (RKL) pipeline instances;
- :mod:`repro.pipeline.rk_update` — the RK-update (RKU) node pipeline:
  stage-combination axpy + primitive update, streamed per node block;
- :mod:`repro.pipeline.rewrites` — gather-sharing, flux fusion, and
  preallocated-buffer binding;
- :mod:`repro.pipeline.executor` — functional, per-branch and
  (block-)streaming execution;
- :mod:`repro.pipeline.opcounts` — per-stage operation counts.
"""

from .ir import DEFAULT_TASK_NAMES, OperatorPipeline, PayloadSpec, Stage
from .kernels import (
    PIPELINE_KERNELS,
    PipelineContext,
    element_primitives,
    register_pipeline_kernel,
)
from .navier_stokes import element_pipeline, navier_stokes_pipeline
from .rewrites import bind_stage_buffers, fuse_flux_divergence, share_loads
from .executor import (
    assembled_total,
    element_residuals,
    run_pipeline,
    streaming_actions,
)
from .rk_update import (
    RK_UPDATE_TASK_NAMES,
    RKUpdateContext,
    node_blocks,
    rk_update_pipeline,
    rk_update_streaming_actions,
)
from .opcounts import (
    pipeline_op_counts,
    pipeline_phase_op_counts,
    stage_op_count,
)

__all__ = [
    "DEFAULT_TASK_NAMES",
    "OperatorPipeline",
    "PayloadSpec",
    "Stage",
    "PIPELINE_KERNELS",
    "PipelineContext",
    "element_primitives",
    "register_pipeline_kernel",
    "element_pipeline",
    "navier_stokes_pipeline",
    "bind_stage_buffers",
    "fuse_flux_divergence",
    "share_loads",
    "RK_UPDATE_TASK_NAMES",
    "RKUpdateContext",
    "node_blocks",
    "rk_update_pipeline",
    "rk_update_streaming_actions",
    "assembled_total",
    "element_residuals",
    "run_pipeline",
    "streaming_actions",
    "pipeline_op_counts",
    "pipeline_phase_op_counts",
    "stage_op_count",
]
