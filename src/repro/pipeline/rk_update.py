"""The RK update (RKU) as a second operator-pipeline instance.

The paper's accelerator runs a *complete* RK time step on the device:
RKL — the FEM spatial operator — streams elements, and RKU — the
Runge-Kutta update on SLR1 — streams *nodes*, combining the stage
derivatives (axpy) and re-deriving the primitive set ``rho, u, T, E, p``.
This module pins the RKU half down as IR, exactly the way
:mod:`repro.pipeline.navier_stokes` pins down RKL:

- :func:`rk_update_pipeline` builds the node pipeline
  LOAD state/derivs -> stage-combination axpy [-> primitive update] ->
  STORE;
- the kernels registered here (``stage_axpy``, ``update_primitives``,
  the node load/stores) are the callable stage bodies, shape-polymorphic
  over the node axis so the same kernel serves the solver's whole-mesh
  execution and the co-simulator's node-block streaming;
- :func:`rk_update_streaming_actions` is the streaming lowering — one
  node block per simulated token through the LOAD -> COMPUTE -> STORE
  task chain (:data:`RK_UPDATE_TASK_NAMES`).

One IR instance serves the same three consumers as the RKL pipeline:
:meth:`Simulation.step <repro.solver.simulation.Simulation.step>`
executes it functionally via
:func:`~repro.pipeline.executor.run_pipeline` (its preallocated-buffer
fast path is the :func:`~repro.pipeline.rewrites.bind_stage_buffers`
graph rewrite), :func:`repro.accel.cosim.cosimulate_rk_stage` streams it
cycle-accurately chained after the RKL element stream, and
:mod:`repro.solver.workload` derives the RKU op counts from its stages
(:func:`repro.pipeline.opcounts.stage_op_count`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

import numpy as np

from ..errors import PipelineError
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED
from ..precision.modes import FLOAT64_POLICY, PrecisionPolicy
from .executor import _run_stage, role_group_exports
from .ir import OperatorPipeline, PayloadSpec, Stage
from .kernels import register_pipeline_kernel

#: Default task names of the lowered RKU node chain (the names the
#: full-step co-simulation and its reports know).
RK_UPDATE_TASK_NAMES: Mapping[str, str] = {
    "load": "load_node_state",
    "compute": "update_node",
    "store": "store_node_state",
}

#: Row order of the ``primitives`` payload: the quantities the paper's
#: RKU kernel writes back each step (3 velocity components, T, p; rho
#: and E live in the conservative state itself).
PRIMITIVE_ROWS = ("u", "v", "w", "T", "p")


@dataclass
class RKUpdateContext:
    """Bound execution context of the RK-update pipeline.

    Unlike the element pipeline's
    :class:`~repro.pipeline.kernels.PipelineContext`, the node stream
    needs no mesh wiring — only the gas model (for the primitive update)
    and, optionally, the preallocated buffers that the
    :func:`~repro.pipeline.rewrites.bind_stage_buffers` rewrite names in
    stage params. A pipeline with no buffer bindings allocates its
    outputs, which is what the per-block streaming path uses.
    """

    gas: GasProperties
    num_nodes: int
    buffers: dict[str, np.ndarray] | None = None
    #: Precision policy governing the dtype of *unbound* accumulation
    #: buffers (``acc``/``scratch``) the axpy kernel allocates — the
    #: node-stream analogue of the backends' scatter-add policy. Bound
    #: buffers carry their own dtype.
    precision: PrecisionPolicy = FLOAT64_POLICY

    def buffer(self, stage: Stage, key: str) -> np.ndarray | None:
        """The preallocated buffer a stage param names (None if unbound).

        Raises :class:`~repro.errors.PipelineError` when the stage names
        a buffer the context does not carry.
        """
        name = stage.param(key)
        if name is None:
            return None
        if self.buffers is None or name not in self.buffers:
            raise PipelineError(
                f"stage {stage.name!r}: no buffer {name!r} bound in context"
            )
        return self.buffers[name]


# ---------------------------------------------------------------------------
# The registered node-stream kernels
# ---------------------------------------------------------------------------


@register_pipeline_kernel("load_node_state")
def _load_node_state(ctx: RKUpdateContext, stage: Stage, state: np.ndarray):
    """LOAD-node: the ``(5, B)`` conservative state of the node block.

    The node stream is a contiguous burst read (no connectivity
    indirection), so the kernel is a pass-through; blocking happens in
    the streaming actions.
    """
    return (state,)


@register_pipeline_kernel("load_node_derivs")
def _load_node_derivs(ctx: RKUpdateContext, stage: Stage, derivs):
    """LOAD-node: the stage derivatives (sequence of ``(5, B)`` arrays)."""
    return (derivs,)


@register_pipeline_kernel("stage_axpy")
def _stage_axpy(
    ctx: RKUpdateContext,
    stage: Stage,
    state: np.ndarray,
    derivs,
    coeffs,
    dt,
):
    """RK stage combination ``state + dt * sum_k coeffs[k] * derivs[k]``.

    Zero coefficients are skipped; when every coefficient is zero the
    input state passes through untouched (the identity stage
    combination). The accumulation runs in the ``acc``/``scratch``
    buffers and the result in the ``out`` buffer when the
    :func:`~repro.pipeline.rewrites.bind_stage_buffers` rewrite bound
    them — the solver's steady-state loop then performs no per-stage
    allocations.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    acc_dtype = ctx.precision.accumulate_for(np.asarray(state).dtype)
    acc = scratch = None
    first = True
    for deriv, coeff in zip(derivs, coeffs):
        c = float(coeff)
        if c == 0.0:
            continue
        if first:
            acc = ctx.buffer(stage, "acc")
            if acc is None:
                acc = np.empty(state.shape, dtype=acc_dtype)
            np.multiply(deriv, c, out=acc)
            first = False
        else:
            if scratch is None:
                scratch = ctx.buffer(stage, "scratch")
                if scratch is None:
                    scratch = np.empty(state.shape, dtype=acc_dtype)
            np.multiply(deriv, c, out=scratch)
            acc += scratch
    if first:
        return (state,)
    out = ctx.buffer(stage, "out")
    if out is None:
        out = np.empty_like(state)
    np.multiply(acc, float(dt), out=out)
    out += state
    return (out,)


@register_pipeline_kernel("update_primitives")
def _update_primitives(ctx: RKUpdateContext, stage: Stage, combined: np.ndarray):
    """The RKU primitive update: ``u, T, p`` from the combined state.

    One ``(5, B)`` array ordered as :data:`PRIMITIVE_ROWS` — exactly the
    quantities the paper's five RKU update loops write back (``rho`` and
    ``E`` are rows 0 and 4 of the conservative state the store stage
    already writes).
    """
    rho = combined[0]
    momentum = combined[1:4]
    total_energy = combined[4]
    out = ctx.buffer(stage, "out")
    if out is None:
        out = np.empty_like(combined)
    velocity = out[0:3]
    np.divide(momentum, rho[None], out=velocity)
    kinetic = 0.5 * np.sum(momentum * velocity, axis=0)
    internal = total_energy - kinetic
    np.divide(internal, rho * ctx.gas.cv, out=out[3])
    np.multiply(internal, ctx.gas.gamma - 1.0, out=out[4])
    return (out,)


def _store(ctx: RKUpdateContext, stage: Stage, value: np.ndarray):
    """STORE-node: stream the block back (copy only when re-homed)."""
    out = ctx.buffer(stage, "out")
    if out is None or out is value:
        return (value,)
    np.copyto(out, value)
    return (out,)


register_pipeline_kernel("store_node_state")(_store)
register_pipeline_kernel("store_node_primitives")(_store)


# ---------------------------------------------------------------------------
# The pipeline instances
# ---------------------------------------------------------------------------


def _build(primitives: bool, num_terms: int) -> OperatorPipeline:
    variant = "step" if primitives else "combine"
    p = OperatorPipeline(name=f"rk-update[{variant}]")
    for spec in (
        PayloadSpec(
            "state", ("F", "N"), "stacked conservative state",
            dtype="storage",
        ),
        PayloadSpec(
            "derivs", ("K", "F", "N"), "finalized stage derivatives",
            dtype="storage",
        ),
        PayloadSpec("coeffs", ("K",), "tableau row of stage weights"),
        PayloadSpec("dt", (), "time-step size"),
        PayloadSpec("node_state", ("F", "N"), dtype="storage"),
        PayloadSpec("node_derivs", ("K", "F", "N"), dtype="storage"),
        PayloadSpec(
            "combined", ("F", "N"), "stage-combined state", dtype="storage"
        ),
        PayloadSpec("updated_state", ("F", "N"), dtype="storage"),
    ):
        p.declare_payload(spec)
    p.add_stage(
        Stage(
            "load_state",
            role="load",
            kernel="load_node_state",
            inputs=("state",),
            outputs=("node_state",),
            phase="rk.update",
        )
    )
    p.add_stage(
        Stage(
            "load_derivs",
            role="load",
            kernel="load_node_derivs",
            inputs=("derivs",),
            outputs=("node_derivs",),
            phase="rk.update",
            params={"num_terms": num_terms},
        )
    )
    p.add_stage(
        Stage(
            "stage_axpy",
            role="compute",
            kernel="stage_axpy",
            inputs=("node_state", "node_derivs", "coeffs", "dt"),
            outputs=("combined",),
            phase="rk.update",
            params={"num_terms": num_terms},
        )
    )
    if primitives:
        p.declare_payload(
            PayloadSpec(
                "primitives", (5, "N"), "u, v, w, T, p per node",
                dtype="storage",
            )
        )
        p.declare_payload(
            PayloadSpec("stored_primitives", (5, "N"), dtype="storage")
        )
        p.add_stage(
            Stage(
                "update_primitives",
                role="compute",
                kernel="update_primitives",
                inputs=("combined",),
                outputs=("primitives",),
                phase="rk.update",
            )
        )
        p.add_stage(
            Stage(
                "store_primitives",
                role="store",
                kernel="store_node_primitives",
                inputs=("primitives",),
                outputs=("stored_primitives",),
                phase="rk.update",
            )
        )
    p.add_stage(
        Stage(
            "store_state",
            role="store",
            kernel="store_node_state",
            inputs=("combined",),
            outputs=("updated_state",),
            phase="rk.update",
        )
    )
    p.validate()
    return p


@lru_cache(maxsize=None)
def _cached(primitives: bool, num_terms: int) -> OperatorPipeline:
    if num_terms < 1:
        raise PipelineError(f"num_terms must be >= 1, got {num_terms}")
    return _build(primitives, num_terms)


def rk_update_pipeline(
    primitives: bool = True, num_terms: int = 1
) -> OperatorPipeline:
    """The RK-update pipeline instance.

    Parameters
    ----------
    primitives:
        ``True`` builds the full step update — stage combination plus
        the RKU primitive update ``rho, u, T, E, p`` (the per-step
        variant). ``False`` builds the combination-only variant the
        intermediate RK stages run (``rk-update[combine]``).
    num_terms:
        Number of derivative terms in the combination (an op-count hint
        carried in the ``stage_axpy``/``load_derivs`` params — the
        executed term count is whatever ``coeffs`` binds at run time).

    Returns
    -------
    OperatorPipeline
        External payloads ``state``, ``derivs``, ``coeffs``, ``dt``;
        outputs ``updated_state`` (and ``stored_primitives``).
        Construction is cached but every call returns its own shallow
        copy, so callers may rewrite their instance freely.

    Raises
    ------
    PipelineError
        If ``num_terms < 1``.
    """
    cached = _cached(bool(primitives), int(num_terms))
    return OperatorPipeline(
        name=cached.name,
        stages=list(cached.stages),
        payloads=dict(cached.payloads),
    )


# ---------------------------------------------------------------------------
# Streaming (one node block per pipeline iteration) for co-simulation
# ---------------------------------------------------------------------------


def node_blocks(num_nodes: int, block_size: int) -> list[np.ndarray]:
    """Contiguous node-index blocks — the RKU stream's tokens.

    The final block may be short when ``block_size`` does not divide
    ``num_nodes``. Raises :class:`~repro.errors.PipelineError` on a
    non-positive size.
    """
    if block_size < 1:
        raise PipelineError(f"node block size must be >= 1, got {block_size}")
    return [
        np.arange(start, min(start + block_size, num_nodes), dtype=np.int64)
        for start in range(0, num_nodes, block_size)
    ]


def rk_update_streaming_actions(
    pipeline: OperatorPipeline,
    ctx: RKUpdateContext,
    state: np.ndarray,
    derivs: Sequence[np.ndarray],
    coeffs,
    dt: float,
    out_state: np.ndarray,
    out_primitives: np.ndarray | None = None,
    blocks: Sequence[np.ndarray] | None = None,
    prepare: Callable[[], None] | None = None,
) -> dict[str, Callable[[int, tuple], object]]:
    """Payload-carrying task actions for the RKU node stream.

    Parameters
    ----------
    pipeline / ctx:
        An :func:`rk_update_pipeline` instance (bindings-free — the
        streaming path writes block slices, not whole-mesh buffers) and
        its bound context.
    state:
        Global stacked state ``(5, N)`` the combination reads. The array
        is read *per block at task start*, so an upstream producer
        sequenced before this chain (via
        :attr:`~repro.dataflow.task.Task.depends_on`) may fill it during
        the same simulation.
    derivs:
        The finalized stage derivatives, each ``(5, N)``; like ``state``
        they are read lazily per block.
    coeffs / dt:
        The tableau row and step size of this combination.
    out_state:
        ``(5, N)`` array the STORE group writes the combined state into.
    out_primitives:
        ``(5, N)`` array for the primitive rows (required when the
        pipeline carries the primitive update).
    blocks:
        Node-index blocks, one per simulator iteration (defaults to
        single-node tokens; see :func:`node_blocks`). Token ``i``
        carries block ``i``.
    prepare:
        Optional callback invoked once, at the first LOAD action —
        the hook the chained full-step co-simulation uses to finalize
        the upstream RKL accumulators (mass inversion, wall conditions)
        at the simulated instant the RKU kernel launches.

    Returns
    -------
    dict[str, Action]
        One action per role group for
        :meth:`~repro.pipeline.ir.OperatorPipeline.to_task_graph`. As
        with :func:`~repro.pipeline.executor.streaming_actions`, every
        action carries a ``batch`` attribute executing all its tokens
        (the concatenation of the node blocks) in one numpy call for
        the vectorized schedule engine; ``prepare`` still runs first,
        at the batched LOAD — after the upstream chains the schedule
        sequenced it behind.

    Raises
    ------
    PipelineError
        If the role grouping is not a legal task chain, or a store
        stage has no output array to write to.
    """
    # Dtype-preserving: the node stream runs in the state's dtype so the
    # float32 precision modes stream exactly what the device would.
    state = np.asarray(state)
    derivs = [np.asarray(deriv) for deriv in derivs]
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if blocks is None:
        blocks = node_blocks(ctx.num_nodes, 1)
    else:
        blocks = [np.asarray(block, dtype=np.int64) for block in blocks]
    targets = {
        "store_node_state": out_state,
        "store_node_primitives": out_primitives,
    }

    # The batched form concatenates the same block prefix for every role
    # group — share it per token count, and remember when it covers the
    # whole node range in order (the streaming default) so groups that
    # do not export node slices can use one basic slice instead of a
    # fancy-index pass. The LOAD group always slices through the index
    # array: its pass-through exports are payloads and must stay fresh
    # copies, never views of the caller's arrays.
    batch_block_cache: dict[int, tuple[np.ndarray, bool]] = {}

    def batch_block(count: int) -> tuple[np.ndarray, bool]:
        if count not in batch_block_cache:
            block = np.concatenate(blocks[:count])
            identity = block.size == state.shape[1] and np.array_equal(
                block, np.arange(block.size)
            )
            batch_block_cache[count] = (block, bool(identity))
        return batch_block_cache[count]

    def run_group(block, stages, exported, role, inputs, needed, first):
        """Execute one role group on ``block`` (a token's nodes or the
        concatenation of all tokens); dict of exports."""
        if role == "load" and first and prepare is not None:
            prepare()
        # Only the slices this group's stages actually read are
        # materialized — downstream groups receive the loaded node
        # payloads through the simulated buffers, not from here.
        env: dict[str, object] = {"coeffs": coeffs, "dt": dt}
        if "state" in needed:
            env["state"] = state[:, block]
        if "derivs" in needed:
            env["derivs"] = [deriv[:, block] for deriv in derivs]
        for payload in inputs:
            env.update(payload)
        if role == "store":
            for stage in stages:
                target = targets.get(stage.kernel)
                if target is None:
                    raise PipelineError(
                        f"stage {stage.name!r}: no output array for "
                        f"kernel {stage.kernel!r}"
                    )
                target[:, block] = env[stage.inputs[0]]
            return None
        for stage in stages:
            _run_stage(ctx, stage, env)
        return {name: env[name] for name in exported}

    actions: dict[str, Callable[[int, tuple], object]] = {}
    for role, stages, exported in role_group_exports(pipeline):
        needed = frozenset(
            name for stage in stages for name in stage.inputs
        )

        def action(
            iteration: int,
            inputs: tuple,
            stages=stages,
            exported=exported,
            role=role,
            needed=needed,
        ):
            return run_group(
                blocks[iteration], stages, exported, role, inputs, needed,
                first=iteration == 0,
            )

        def batch(
            count: int,
            inputs: tuple,
            stages=stages,
            exported=exported,
            role=role,
            needed=needed,
        ):
            block, identity = batch_block(count)
            if identity and role != "load":
                block = slice(None)
            result = run_group(
                block, stages, exported, role, inputs, needed, first=True
            )
            if role == "store":
                return [None] * count  # per-token sink values
            return result

        action.batch = batch
        actions[role] = action
    return actions
