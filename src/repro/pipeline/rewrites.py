"""Graph rewrites over the operator pipeline IR.

The solver's fusion levels are produced by rewriting the base two-pass
pipeline, never by separate hand-written residual code paths:

- :func:`share_loads` — merge identical LOAD stages into one shared
  gather (``fusion="gather"``, the historical ``fused=True``);
- :func:`fuse_flux_divergence` — merge parallel flux->divergence->store
  branches into combined-flux -> single divergence -> single store
  (``fusion="full"``, the accelerator's merged COMPUTE module);
- :func:`bind_stage_buffers` — point stages at preallocated context
  buffers (the solver's allocation-free steady-state loop; the on-chip
  staging analogue).

Rewrites are pure: they return a new :class:`OperatorPipeline` and leave
the input untouched (pipeline instances are cached and shared).
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import PipelineError
from .ir import OperatorPipeline, PayloadSpec, Stage

#: Flux-kernel pairs that fuse, and the combined kernel replacing them.
#: ``combined_flux`` computes one primitive conversion feeding both flux
#: families, so fusing is arithmetic sharing, not just graph surgery.
#: Contract for registering a pair here: the combined kernel must emit a
#: *full conserved-set, left-hand-side* net flux (lowered with
#: ``sign=-1, field_start=0``), folding each branch's own sign and field
#: range into its arithmetic — as ``combined_flux`` does via
#: ``combined_rhs_fluxes`` (``F_c - F_v``).
FUSABLE_FLUX_KERNELS: dict[frozenset[str], str] = {
    frozenset({"convective_flux", "viscous_flux"}): "combined_flux",
}


def _copy(pipeline: OperatorPipeline, name: str) -> OperatorPipeline:
    out = OperatorPipeline(name=name)
    out.payloads = dict(pipeline.payloads)
    out.stages = list(pipeline.stages)
    return out


def share_loads(
    pipeline: OperatorPipeline,
    shared_name: str = "load_state",
    shared_payload: str = "elem_state",
    phase: str = "rk.other",
) -> OperatorPipeline:
    """Merge LOAD stages with identical kernel+inputs into one.

    Parameters
    ----------
    pipeline:
        Pipeline to rewrite (left untouched; a copy is returned).
    shared_name / shared_payload:
        Name of the merged LOAD stage and of the single gathered-state
        payload it produces.
    phase:
        Profiler phase of the shared gather — defaults to ``rk.other``
        because its cost can no longer be attributed to either paper
        phase (Fig. 2).

    Returns
    -------
    OperatorPipeline
        The rewritten pipeline (an unchanged copy when there are fewer
        than two LOAD stages).

    Raises
    ------
    PipelineError
        If the LOAD stages differ in kernel, inputs, or params — a
        shared gather would change semantics.
    """
    loads = [s for s in pipeline.stages if s.role == "load"]
    if len(loads) < 2:
        return _copy(pipeline, pipeline.name)
    signature = {(s.kernel, s.inputs, tuple(sorted(s.params.items()))) for s in loads}
    if len(signature) != 1:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: load stages differ; cannot share"
        )
    first = loads[0]
    merged = Stage(
        shared_name,
        role="load",
        kernel=first.kernel,
        inputs=first.inputs,
        outputs=(shared_payload,),
        phase=phase,
        params=dict(first.params),
    )
    replaced_payloads = {out for s in loads for out in s.outputs}
    out = OperatorPipeline(name=f"{pipeline.name}+shared-load")
    out.payloads = {
        name: spec
        for name, spec in pipeline.payloads.items()
        if name not in replaced_payloads
    }
    sample = next(
        (pipeline.payloads[p] for p in replaced_payloads if p in pipeline.payloads),
        None,
    )
    out.declare_payload(
        PayloadSpec(
            shared_payload,
            sample.shape if sample else ("F", "E", "Q"),
            "shared gathered element state",
            dtype=sample.dtype if sample else "storage",
        )
    )
    out.add_stage(merged)
    for stage in pipeline.stages:
        if stage in loads:
            continue
        inputs = tuple(
            shared_payload if name in replaced_payloads else name
            for name in stage.inputs
        )
        out.add_stage(replace(stage, inputs=inputs))
    out.validate()
    return out


def fuse_flux_divergence(
    pipeline: OperatorPipeline, phase: str = "rk.fused"
) -> OperatorPipeline:
    """Fuse parallel flux branches into one combined pass.

    Requires the pipeline to already share its gather (one element-state
    payload feeding every flux stage). The matched flux stages are
    replaced by their registered combined kernel; the per-branch weak
    divergences collapse to a single full-field divergence and the
    per-branch stores to one store — 5 weak divergences instead of 9,
    one scatter instead of two, exactly the accelerator's merged module.
    Linearity of the weak divergence makes the result the exact sum of
    the separate branches (up to rounding).

    Parameters
    ----------
    pipeline:
        Pipeline to rewrite (left untouched; a copy is returned).
    phase:
        Profiler phase the fused stages are attributed to.

    Returns
    -------
    OperatorPipeline
        The fused pipeline (LOAD -> combined flux -> divergence ->
        store).

    Raises
    ------
    PipelineError
        If no combined kernel is registered for the pipeline's flux
        stages, the branches read different payloads (gather not
        shared), or there is nothing to fuse.
    """
    flux_stages = [
        s
        for s in pipeline.stages
        if s.role == "compute" and not s.kernel == "weak_divergence"
    ]
    kernels = frozenset(s.kernel for s in flux_stages)
    combined_kernel = FUSABLE_FLUX_KERNELS.get(kernels)
    if combined_kernel is None:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: no combined kernel registered for "
            f"flux stages {sorted(kernels)}"
        )
    sources = {s.inputs for s in flux_stages}
    if len(sources) != 1:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: flux branches read different "
            "payloads; share the gather before fusing"
        )
    (shared_inputs,) = sources
    div_stages = [s for s in pipeline.stages if s.kernel == "weak_divergence"]
    store_stages = [s for s in pipeline.stages if s.role == "store"]
    if not div_stages or not store_stages:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: nothing to fuse (missing "
            "divergence or store stages)"
        )

    out = OperatorPipeline(name=f"{pipeline.name}+fused-compute")
    load_stages = [s for s in pipeline.stages if s.role == "load"]
    out.payloads = {
        name: spec
        for name, spec in pipeline.payloads.items()
        if pipeline.producer_of(name) is None
        or pipeline.producer_of(name) in load_stages
    }
    for spec in (
        PayloadSpec(
            "net_flux", ("F", "E", "Q", 3), "combined F_c - F_v",
            dtype="storage",
        ),
        PayloadSpec("res_total", ("F", "E", "Q"), dtype="storage"),
        PayloadSpec("assembled_total", ("F", "N"), dtype="accumulate"),
    ):
        out.declare_payload(spec)
    for stage in load_stages:
        out.add_stage(replace(stage, phase=phase))
    out.add_stage(
        Stage(
            "combined_flux",
            role="compute",
            kernel=combined_kernel,
            inputs=shared_inputs,
            outputs=("net_flux",),
            phase=phase,
            params={"num_fields": 5},
        )
    )
    out.add_stage(
        Stage(
            "divergence",
            role="compute",
            kernel="weak_divergence",
            inputs=("net_flux",),
            outputs=("res_total",),
            phase=phase,
            params={"sign": -1.0, "field_start": 0, "num_fields": 5},
        )
    )
    out.add_stage(
        Stage(
            "store",
            role="store",
            kernel="scatter_add",
            inputs=("res_total",),
            outputs=("assembled_total",),
            phase=phase,
            params={"field_start": 0, "num_fields": 5},
        )
    )
    out.validate()
    return out


def bind_stage_buffers(
    pipeline: OperatorPipeline,
    bindings: "dict[str, dict[str, str]]",
) -> OperatorPipeline:
    """Point stages at preallocated context buffers.

    The fast path of a steady-state loop — reusing the same output and
    scratch arrays every step instead of allocating — is expressed as a
    graph rewrite, not as a bespoke code path: each bound stage gains
    params naming the buffers its kernel should write into, and the
    execution context (e.g.
    :class:`~repro.pipeline.rk_update.RKUpdateContext`) carries the
    arrays under those names.

    Parameters
    ----------
    pipeline:
        Pipeline to rewrite (left untouched; a copy is returned).
    bindings:
        ``{stage name: {kernel buffer param: context buffer name}}`` —
        e.g. ``{"stage_axpy": {"acc": "increment", "out": "stage_state"}}``.

    Returns
    -------
    OperatorPipeline
        The rewritten pipeline.

    Raises
    ------
    PipelineError
        If a binding names a stage the pipeline does not have.
    """
    known = {stage.name for stage in pipeline.stages}
    unknown = sorted(set(bindings) - known)
    if unknown:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: cannot bind buffers of unknown "
            f"stage(s) {unknown}"
        )
    out = _copy(pipeline, f"{pipeline.name}+bound-buffers")
    out.stages = [
        replace(stage, params={**stage.params, **bindings[stage.name]})
        if stage.name in bindings
        else stage
        for stage in pipeline.stages
    ]
    out.validate()
    return out
