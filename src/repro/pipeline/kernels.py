"""Pipeline kernels: the callable bodies the IR stages name.

Each kernel is a pure function ``fn(ctx, stage, *inputs) -> (outputs,)``
operating on batched element arrays (``(F, E, Q)`` fields,
``(F, E, Q, 3)`` fluxes). They are shape-polymorphic over the element
axis, so the same kernel serves the solver's whole-mesh evaluation and
the co-simulator's streaming at any granularity — an element block
(:meth:`PipelineContext.element_block`) or a single element
(:meth:`PipelineContext.element`).

All array work routes through the context's
:class:`~repro.backend.KernelBackend` — the pipeline IR is the *what*,
the backend is the *how*.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace

import numpy as np

from ..backend import KernelBackend
from ..errors import PipelineError
from ..fem.geometry import ElementGeometry
from ..fem.reference import ReferenceHex
from ..physics.fluxes import (
    FluxSet,
    combined_rhs_fluxes,
    convective_fluxes,
    viscous_fluxes,
)
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED
from ..physics.workspace import WorkspacePool
from .ir import Stage

KernelFn = Callable[..., tuple[np.ndarray, ...]]

#: Registry of pipeline kernels by name (the names IR stages carry).
PIPELINE_KERNELS: dict[str, KernelFn] = {}


def register_pipeline_kernel(name: str) -> Callable[[KernelFn], KernelFn]:
    """Decorator registering a kernel under ``name``."""

    def deco(fn: KernelFn) -> KernelFn:
        PIPELINE_KERNELS[name] = fn
        return fn

    return deco


def pipeline_kernel(name: str) -> KernelFn:
    """Kernel lookup with a precise error."""
    try:
        return PIPELINE_KERNELS[name]
    except KeyError:
        raise PipelineError(
            f"unknown pipeline kernel {name!r}; known: "
            f"{sorted(PIPELINE_KERNELS)}"
        ) from None


@dataclass
class PipelineContext:
    """Bound execution context: mesh wiring, metric terms, gas, backend."""

    connectivity: np.ndarray
    num_nodes: int
    geom: ElementGeometry
    ref: ReferenceHex
    gas: GasProperties
    backend: KernelBackend
    #: Scratch buffers for the flux kernels' per-stage temporaries.
    #: Element/block views share the parent's pool (``replace`` copies
    #: the reference), so one solve reuses the same workspaces across
    #: every stage, step and streamed block.
    workspace: WorkspacePool = field(default_factory=WorkspacePool)

    @classmethod
    def from_operator(cls, operator) -> "PipelineContext":
        """Context of a :class:`~repro.solver.navier_stokes.NavierStokesOperator`."""
        return cls(
            connectivity=operator.mesh.connectivity,
            num_nodes=operator.mesh.num_nodes,
            geom=operator.geom,
            ref=operator.ref,
            gas=operator.gas,
            backend=operator.backend,
        )

    @property
    def num_elements(self) -> int:
        return int(self.connectivity.shape[0])

    def element(self, index: int) -> "PipelineContext":
        """Single-element view of the context (streaming co-simulation).

        Connectivity and metric terms are sliced to element ``index``;
        ``num_nodes`` stays global so the STORE kernel still assembles
        into the full node space.
        """
        return replace(
            self,
            connectivity=self.connectivity[index : index + 1],
            geom=self.geom.element_view(index),
        )

    def element_block(self, indices: np.ndarray) -> "PipelineContext":
        """Block view of the context (batched streaming co-simulation).

        Parameters
        ----------
        indices:
            1-D array of element ids forming one block token. The ids
            need not be contiguous: a compute unit's shard of the mesh
            is whatever :func:`repro.mesh.partition` handed it.

        Returns
        -------
        PipelineContext
            Context whose connectivity and metric terms cover exactly
            the block's elements (shape ``(B, ...)`` on the element
            axis); ``num_nodes`` stays global so STORE still assembles
            into the full node space.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return replace(
            self,
            connectivity=self.connectivity[indices],
            geom=self.geom.block_view(indices),
        )


# ---------------------------------------------------------------------------
# Pointwise physics shared by the flux kernels
# ---------------------------------------------------------------------------


def element_primitives(
    state_elem: np.ndarray, gas: GasProperties
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Primitive fields per element node from gathered conservatives.

    ``state_elem`` is ``(5, E, Q)``; returns
    ``(rho, velocity(3, E, Q), pressure, temperature, total_energy)``.
    This is the node-level LOAD stage of the paper's Fig. 1.
    """
    rho = state_elem[0]
    momentum = state_elem[1:4]
    total_energy = state_elem[4]
    velocity = momentum / rho[None]
    kinetic = 0.5 * np.sum(momentum * velocity, axis=0)
    internal = total_energy - kinetic
    pressure = (gas.gamma - 1.0) * internal
    temperature = internal / (rho * gas.cv)
    return rho, velocity, pressure, temperature, total_energy


def _viscous_flux_set(
    ctx: PipelineContext, velocity: np.ndarray, temperature: np.ndarray
) -> FluxSet:
    """Viscous/heat :class:`FluxSet` from the batched node gradients.

    Computes the gradients of the three velocity components and the
    temperature in one backend call (COMPUTE-Gradients of Fig. 1), then
    the stress tensor and fluxes (stages 2a/2b/2c of Fig. 3).
    """
    fields = np.concatenate([velocity, temperature[None]], axis=0)
    grads = ctx.backend.physical_gradient_many(fields, ctx.geom, ctx.ref)
    grad_u = np.moveaxis(grads[:3], 0, 2)  # (E, Q, i, j) = du_i/dx_j
    grad_t = grads[3]
    return viscous_fluxes(velocity, grad_u, grad_t, ctx.gas, ctx.workspace)


def _stack_viscous(fluxes: FluxSet) -> np.ndarray:
    """``(4, E, Q, 3)`` momentum + energy viscous fluxes (no mass flux)."""
    return np.stack(
        [fluxes.momentum[..., i, :] for i in range(3)] + [fluxes.energy]
    )


def pad_to_conserved(values: np.ndarray, field_start: int) -> np.ndarray:
    """Place a partial-field array into the full conserved set.

    ``values`` has fields along axis 0; rows outside
    ``[field_start, field_start + F)`` are exact zeros. Full-set inputs
    at offset 0 pass through unchanged.
    """
    if field_start == 0 and values.shape[0] == NUM_CONSERVED:
        return values
    out = np.zeros((NUM_CONSERVED,) + values.shape[1:], dtype=values.dtype)
    out[field_start : field_start + values.shape[0]] = values
    return out


# ---------------------------------------------------------------------------
# The registered kernels
# ---------------------------------------------------------------------------


@register_pipeline_kernel("gather")
def _gather(ctx: PipelineContext, stage: Stage, state: np.ndarray):
    """LOAD-element: ``(5, N)`` global state to ``(5, E, Q)`` local."""
    return (ctx.backend.gather(state, ctx.connectivity),)


@register_pipeline_kernel("convective_flux")
def _convective_flux(ctx: PipelineContext, stage: Stage, state_elem: np.ndarray):
    """Euler fluxes per node, stacked ``(5, E, Q, 3)``."""
    rho, velocity, pressure, _temperature, total_energy = element_primitives(
        state_elem, ctx.gas
    )
    return (
        convective_fluxes(
            rho, velocity, pressure, total_energy, ctx.workspace
        ).stacked(),
    )


@register_pipeline_kernel("viscous_flux")
def _viscous_flux(ctx: PipelineContext, stage: Stage, state_elem: np.ndarray):
    """Viscous/heat fluxes per node, stacked ``(4, E, Q, 3)``.

    The mass equation has no viscous flux, so only the momentum and
    energy rows are produced (``field_start=1`` downstream).
    """
    _rho, velocity, _pressure, temperature, _total_energy = element_primitives(
        state_elem, ctx.gas
    )
    return (_stack_viscous(_viscous_flux_set(ctx, velocity, temperature)),)


@register_pipeline_kernel("combined_flux")
def _combined_flux(ctx: PipelineContext, stage: Stage, state_elem: np.ndarray):
    """Net flux ``F_c - F_v`` per node, stacked ``(5, E, Q, 3)``.

    One primitive conversion feeds both flux families — the element-level
    arithmetic sharing of the accelerator's merged diffusion+convection
    COMPUTE module.
    """
    rho, velocity, pressure, temperature, total_energy = element_primitives(
        state_elem, ctx.gas
    )
    conv = convective_fluxes(
        rho, velocity, pressure, total_energy, ctx.workspace
    )
    visc = _viscous_flux_set(ctx, velocity, temperature)
    return (combined_rhs_fluxes(conv, visc, ctx.workspace).stacked(),)


@register_pipeline_kernel("weak_divergence")
def _weak_divergence(ctx: PipelineContext, stage: Stage, flux: np.ndarray):
    """Weak-divergence residuals of a stacked flux, ``(F, E, Q)``.

    ``sign`` scales the result (-1 for fluxes written on the left-hand
    side, ``dq/dt + div F = 0``; +1 for the diffusion contribution that
    enters with a plus).
    """
    sign = float(stage.param("sign", -1.0))
    div = ctx.backend.weak_divergence_many(flux, ctx.geom, ctx.ref)
    if sign != 1.0:
        div = sign * div
    return (div,)


@register_pipeline_kernel("scatter_add")
def _scatter_add(ctx: PipelineContext, stage: Stage, element_res: np.ndarray):
    """STORE-element-contribution: assemble ``(F, E, Q)`` to ``(5, N)``.

    ``field_start`` places partial-field residuals (the 4 viscous rows)
    into the conserved set; absent rows assemble to exact zeros.
    """
    start = int(stage.param("field_start", 0))
    assembled = ctx.backend.scatter_add_many(
        element_res, ctx.connectivity, ctx.num_nodes
    )
    return (pad_to_conserved(assembled, start),)
