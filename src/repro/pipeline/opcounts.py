"""Per-stage operation counts derived from the pipeline IR.

The workload characterization (:mod:`repro.solver.workload`) and the
accelerator stage-latency split
(:meth:`repro.accel.designs.AcceleratorDesign.pipeline_stage_cycles`)
both consume these counts, so op-accounting, timing and functional
execution share the pipeline as their single source of truth.

Each pipeline kernel maps to the per-node building blocks of
:mod:`repro.opcount` (annotated there with their arithmetic origin); a
stage's count is its kernel's count scaled by the element's node count
and the stage's ``num_fields`` parameter.

Two pipeline families are priced: the RKL element pipeline (counts per
*element*, ``(p + 1)**3`` nodes each) and the RK-update node pipeline of
:mod:`repro.pipeline.rk_update` (counts per *node* — its stream token is
a node, so no element scaling applies; the ``num_terms`` param scales
the derivative-dependent stages).
"""

from __future__ import annotations

from ..errors import PipelineError
from ..opcount import (
    NUM_FIELDS,
    NUM_GRADIENT_FIELDS,
    OpCount,
    euler_flux_per_node,
    gradient_per_node_per_field,
    load_element,
    primitives_per_node,
    store_element,
    tau_per_node,
    viscous_flux_per_node,
    weak_divergence_per_node_per_field,
)
from .ir import OperatorPipeline, Stage


def stage_op_count(stage: Stage, polynomial_order: int) -> OpCount:
    """Per-element :class:`~repro.opcount.OpCount` of one stage.

    Parameters
    ----------
    stage:
        The stage whose kernel is priced; ``num_fields`` in its params
        scales the field-proportional kernels.
    polynomial_order:
        Element order ``p`` (``(p + 1)**3`` nodes per element).

    Raises
    ------
    PipelineError
        If the stage's kernel has no op-count model.
    """
    n1 = polynomial_order + 1
    q = n1**3
    fields = int(stage.param("num_fields", NUM_FIELDS))
    kernel = stage.kernel
    if kernel == "gather":
        return load_element(q)
    if kernel == "scatter_add":
        return store_element(q, fields)
    if kernel == "weak_divergence":
        return weak_divergence_per_node_per_field(n1).scaled(q * fields)
    if kernel == "convective_flux":
        return (primitives_per_node() + euler_flux_per_node()).scaled(q)
    if kernel == "viscous_flux":
        pointwise = (
            primitives_per_node() + tau_per_node() + viscous_flux_per_node()
        )
        return pointwise.scaled(q) + gradient_per_node_per_field(n1).scaled(
            q * NUM_GRADIENT_FIELDS
        )
    if kernel == "combined_flux":
        # One primitive conversion shared by both flux families.
        pointwise = (
            primitives_per_node()
            + euler_flux_per_node()
            + tau_per_node()
            + viscous_flux_per_node()
        )
        return pointwise.scaled(q) + gradient_per_node_per_field(n1).scaled(
            q * NUM_GRADIENT_FIELDS
        )
    # -- RK-update node pipeline (counts per node, not per element) --------
    terms = int(stage.param("num_terms", 1))
    if kernel == "load_node_state":
        # Stream the node's conserved set in.
        return OpCount(dram_reads=NUM_FIELDS)
    if kernel == "load_node_derivs":
        # One derivative stream per combination term.
        return OpCount(dram_reads=NUM_FIELDS * terms)
    if kernel == "stage_axpy":
        # One fused multiply-add per field per nonzero tableau entry
        # (the dt scale folds into the streamed coefficients).
        return OpCount(adds=NUM_FIELDS * terms, muls=NUM_FIELDS * terms)
    if kernel == "update_primitives":
        # u = m / rho (3 div), kinetic (6 ops), internal energy (1),
        # T (1 div + 1 mul), p (1 mul) — the RKU kernel's arithmetic.
        return OpCount(adds=3, muls=5, divs=4)
    if kernel in ("store_node_state", "store_node_primitives"):
        # Stream the node's updated set out.
        return OpCount(dram_writes=NUM_FIELDS)
    raise PipelineError(
        f"stage {stage.name!r}: no op-count model for kernel {kernel!r}"
    )


def pipeline_op_counts(
    pipeline: OperatorPipeline, polynomial_order: int
) -> dict[str, OpCount]:
    """Per-element op counts for every stage, keyed by stage name.

    Raises :class:`~repro.errors.PipelineError` when a stage kernel has
    no op-count model (see :func:`stage_op_count`).
    """
    return {
        stage.name: stage_op_count(stage, polynomial_order)
        for stage in pipeline.topological_order()
    }


def pipeline_phase_op_counts(
    pipeline: OperatorPipeline, polynomial_order: int
) -> dict[str, OpCount]:
    """Per-element op counts aggregated by profiler phase.

    For the unfused pipeline this reproduces the paper's
    ``rk.convection`` / ``rk.diffusion`` split (each pass pays its own
    LOAD and STORE, Fig. 1); the fused rewrite yields a single
    ``rk.fused`` phase with the shared-stage savings visible in the
    totals.
    """
    totals: dict[str, OpCount] = {}
    for stage in pipeline.topological_order():
        count = stage_op_count(stage, polynomial_order)
        if stage.phase in totals:
            totals[stage.phase] = totals[stage.phase] + count
        else:
            totals[stage.phase] = count
    return totals
