"""Executing an operator pipeline.

Three execution styles over one IR:

- :func:`run_pipeline` — whole-mesh functional execution on batched numpy
  arrays; this is what :meth:`NavierStokesOperator.residual` runs, with
  each stage attributed to its profiler phase;
- :func:`element_residuals` — compute-only execution on an already
  gathered element state (the solver's per-pass diagnostics helpers);
- :func:`streaming_actions` — payload-carrying actions for the
  cycle-accurate dataflow simulator: the co-simulator prices *and
  computes* the same stages, one element *block* per pipeline iteration
  (block size 1 recovers element-at-a-time streaming).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

import numpy as np

from ..errors import PipelineError
from .ir import OperatorPipeline, Stage
from .kernels import PipelineContext, pad_to_conserved, pipeline_kernel


def _run_stage(
    ctx: PipelineContext, stage: Stage, env: dict[str, np.ndarray]
) -> None:
    """Execute one stage against ``env``, binding its outputs."""
    try:
        args = [env[name] for name in stage.inputs]
    except KeyError as exc:
        raise PipelineError(
            f"stage {stage.name!r}: missing input payload {exc.args[0]!r}"
        ) from None
    outs = pipeline_kernel(stage.kernel)(ctx, stage, *args)
    if len(outs) != len(stage.outputs):
        raise PipelineError(
            f"stage {stage.name!r}: kernel {stage.kernel!r} returned "
            f"{len(outs)} payload(s), declared {len(stage.outputs)}"
        )
    for name, value in zip(stage.outputs, outs):
        env[name] = value


def run_pipeline(
    pipeline: OperatorPipeline,
    ctx: PipelineContext,
    inputs: Mapping[str, np.ndarray],
    profiler=None,
) -> dict[str, np.ndarray]:
    """Execute the whole pipeline functionally; returns its output payloads.

    Parameters
    ----------
    pipeline / ctx:
        The stage graph and the bound execution context.
    inputs:
        Must bind every external payload (for the NS pipelines:
        ``{"state": (5, N)}``).
    profiler:
        Optional :class:`~repro.solver.profiler.PhaseProfiler`; each
        stage runs inside its declared phase so the paper's Fig. 2
        attribution emerges from the IR.

    Returns
    -------
    dict[str, numpy.ndarray]
        The pipeline's output payloads by name.

    Raises
    ------
    PipelineError
        On unbound external payloads, unknown kernels, or a kernel
        returning the wrong payload count.
    """
    missing = [n for n in pipeline.external_inputs() if n not in inputs]
    if missing:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: unbound external payload(s) "
            f"{missing}"
        )
    env: dict[str, np.ndarray] = dict(inputs)
    # Reference counts so intermediates are released as soon as their
    # last consumer has run — a multi-pass pipeline must not hold both
    # branches' temporaries alive at once.
    pending_reads = {
        name: len(pipeline.consumers_of(name))
        for stage in pipeline.stages
        for name in stage.outputs
    }
    for stage in pipeline.topological_order():
        if profiler is None:
            _run_stage(ctx, stage, env)
        else:
            with profiler.phase(stage.phase):
                _run_stage(ctx, stage, env)
        for name in stage.inputs:
            if name in pending_reads:
                pending_reads[name] -= 1
                if pending_reads[name] == 0:
                    del env[name]
    return {name: env[name] for name in pipeline.output_payloads()}


def assembled_total(outputs: Mapping[str, np.ndarray]) -> np.ndarray:
    """Sum of a pipeline's assembled ``(5, N)`` output payloads.

    Raises :class:`~repro.errors.PipelineError` when ``outputs`` is
    empty (a pipeline that produced nothing).
    """
    total: np.ndarray | None = None
    for value in outputs.values():
        total = value if total is None else total + value
    if total is None:
        raise PipelineError("pipeline produced no output payloads")
    return total


def element_residuals(
    pipeline: OperatorPipeline,
    ctx: PipelineContext,
    state_elem: np.ndarray,
    phases: Sequence[str] | None = None,
) -> np.ndarray:
    """Per-element residuals ``(5, E, Q)`` of the pipeline's compute stages.

    Load stages are short-circuited with the provided gathered state and
    store stages are skipped; each store input is padded to the full
    conserved set at its ``field_start``. ``phases`` restricts execution
    to one branch (e.g. ``("rk.convection",)``) of a multi-pass pipeline.
    """
    env: dict[str, np.ndarray] = {}
    total: np.ndarray | None = None
    for stage in pipeline.topological_order():
        if stage.role == "load":
            env[stage.outputs[0]] = state_elem
            continue
        if phases is not None and stage.phase not in phases:
            continue
        if stage.role == "store":
            padded = pad_to_conserved(
                env[stage.inputs[0]], int(stage.param("field_start", 0))
            )
            total = padded if total is None else total + padded
            continue
        _run_stage(ctx, stage, env)
    if total is None:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: no store stage matched "
            f"phases={phases}"
        )
    return total


# ---------------------------------------------------------------------------
# Streaming (one element block per pipeline iteration) for co-simulation
# ---------------------------------------------------------------------------

Action = Callable[[int, tuple], object]


def role_group_exports(
    pipeline: OperatorPipeline,
) -> list[tuple[str, list[Stage], list[str]]]:
    """Role groups plus the payloads each exports across group borders.

    Shared plumbing of the streaming lowerings (the element stream here
    and the RK-update node stream in :mod:`repro.pipeline.rk_update`):
    per role group of :meth:`OperatorPipeline.role_groups`, the payloads
    consumed by a *different* group are the ones that must travel
    through the simulated inter-task buffers.
    """
    groups = pipeline.role_groups()
    group_index = {
        stage.name: idx
        for idx, (_, stages) in enumerate(groups)
        for stage in stages
    }
    plan: list[tuple[str, list[Stage], list[str]]] = []
    for idx, (role, stages) in enumerate(groups):
        exported: list[str] = []
        for stage in stages:
            for out in stage.outputs:
                consumers = pipeline.consumers_of(out)
                if any(group_index[c.name] != idx for c in consumers):
                    exported.append(out)
        plan.append((role, stages, exported))
    return plan


def streaming_actions(
    pipeline: OperatorPipeline,
    ctx: PipelineContext,
    state: np.ndarray,
    accumulator: np.ndarray,
    blocks: Sequence[np.ndarray] | None = None,
) -> dict[str, Action]:
    """Payload-carrying task actions for the element dataflow graph.

    Parameters
    ----------
    pipeline:
        The operator pipeline whose role groups become the simulated
        LOAD / COMPUTE / STORE tasks.
    ctx:
        Bound execution context (connectivity, metric terms, backend)
        covering the whole mesh; each iteration takes a block view.
    state:
        Global stacked state ``(5, N)`` every LOAD gathers from.
    accumulator:
        Output array ``(5, N)`` the STORE group assembles element
        contributions into. For a sharded (multi-CU) run, pass one
        accumulator per CU and sum them afterwards — that sum is the
        reduction of the per-CU partial residuals.
    blocks:
        Element-index arrays, one per simulator iteration (see
        :func:`repro.mesh.partition.element_blocks`); ``None`` means one
        single-element block per mesh element — the pre-batching
        behaviour. Token ``i`` of the simulation carries block ``i``.

    Returns
    -------
    dict[str, Action]
        One action per role group (keyed ``"load"`` / ``"compute"`` /
        ``"store"``) for :meth:`OperatorPipeline.to_task_graph`. Each
        action executes its group's stages on block ``iteration`` only,
        passing the payloads that cross group boundaries through the
        simulated inter-task buffers as dicts.

        Every action also carries a ``batch`` attribute — the batched
        form the vectorized schedule engine
        (:mod:`repro.dataflow.schedule`) calls once per task instead of
        once per token: the same stages over the concatenation of all
        blocks, numerically the per-token stream in one numpy call
        (scatter order included, since ``np.add.at`` applies the
        concatenated indices in block order).

    Raises
    ------
    PipelineError
        If the pipeline does not have exactly one external payload (the
        global state) or its role grouping is not a legal task chain.
    """
    # Dtype-preserving: float32 states stream float32 element payloads
    # (the device-faithful precision mode); the accumulator's dtype picks
    # the STORE reduction precision, exactly like the backends' policy.
    state = np.asarray(state)
    if blocks is None:
        blocks = [
            np.array([index], dtype=np.int64)
            for index in range(ctx.num_elements)
        ]
    else:
        blocks = [np.asarray(block, dtype=np.int64) for block in blocks]
    externals = pipeline.external_inputs()
    if len(externals) != 1:
        raise PipelineError(
            f"pipeline {pipeline.name!r}: streaming execution expects one "
            f"external payload (the global state), found {externals}"
        )
    (state_payload,) = externals

    # One batched run shares the concatenated-block context between the
    # LOAD / COMPUTE / STORE batch calls (connectivity and metric views
    # are state-independent, so caching per token count is safe).
    batch_ctx_cache: dict[int, PipelineContext] = {}

    def batch_ctx(count: int) -> PipelineContext:
        if count not in batch_ctx_cache:
            batch_ctx_cache[count] = ctx.element_block(
                np.concatenate(blocks[:count])
            )
        return batch_ctx_cache[count]

    def run_group(ectx, stages, exported, role, env, count=None):
        """Execute one role group against ``env``; dict of exports."""
        if role == "store":
            # The STORE kernel's read-modify-write, restricted to the
            # streamed nodes: a block touches B*Q node slots, so the
            # dense (5, N) scatter the batched kernel produces would
            # make streaming quadratic in mesh size.
            for stage in stages:
                res = env[stage.inputs[0]]  # (F, B, Q)
                start = int(stage.param("field_start", 0))
                for field in range(res.shape[0]):
                    np.add.at(
                        accumulator[start + field],
                        ectx.connectivity,
                        res[field],
                    )
            return None
        for stage in stages:
            _run_stage(ectx, stage, env)
        return {name: env[name] for name in exported}

    actions: dict[str, Action] = {}
    for role, stages, exported in role_group_exports(pipeline):

        def action(
            iteration: int,
            inputs: tuple,
            stages=stages,
            exported=exported,
            role=role,
        ):
            env: dict[str, np.ndarray] = {state_payload: state}
            for payload in inputs:
                env.update(payload)
            return run_group(
                ctx.element_block(blocks[iteration]),
                stages,
                exported,
                role,
                env,
            )

        def batch(
            count: int,
            inputs: tuple,
            stages=stages,
            exported=exported,
            role=role,
        ):
            env: dict[str, np.ndarray] = {state_payload: state}
            for payload in inputs:
                env.update(payload)
            result = run_group(
                batch_ctx(count), stages, exported, role, env
            )
            if role == "store":
                return [None] * count  # per-token sink values
            return result

        action.batch = batch
        actions[role] = action
    return actions
