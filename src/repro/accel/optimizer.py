"""The Section III-D iterative Initiation-Interval optimizer.

The paper's procedure, verbatim: identify the task with the highest
latency criticality; extract its high-trip-count loops and pipeline
them; fully unroll small-trip-count loops; apply array partitioning "with
the appropriate factors" to feed the parallel accesses; repeat "until no
further optimization could be achieved, either due to unresolved
dependencies or resource over-utilization".

:class:`IIOptimizer` reproduces that loop over our loop-nest IR:

1. schedule every loop under the current directives;
2. pick the loop with the largest latency;
3. if it is port-limited, double the partition factor of the binding
   array; if it has a small trip count and is not yet unrolled, unroll
   it; if it is recurrence-limited, stop (unresolved dependency);
4. accept the move only if the design still fits the resource budget;
   otherwise stop (resource over-utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HLSError
from ..hls.arrays import ArraySpec
from ..hls.directives import (
    ArrayPartitionDirective,
    DirectiveSet,
    PipelineDirective,
    UnrollDirective,
)
from ..hls.loops import LoopNest
from ..hls.resources import ResourceVector, array_resources, loop_resources
from ..hls.scheduler import LoopSchedule, schedule_loop

#: Loops at or below this trip count are "small" and get fully unrolled.
SMALL_TRIP_THRESHOLD = 8
#: Hard cap on partition factors (routing practicality).
MAX_PARTITION_FACTOR = 32


@dataclass(frozen=True)
class OptimizationStep:
    """One accepted (or terminal) move of the DSE loop."""

    iteration: int
    target_loop: str
    move: str
    latency_before: int
    latency_after: int
    accepted: bool
    reason: str


@dataclass
class IIOptimizer:
    """Iterative II minimization over a set of loops sharing arrays."""

    loops: dict[str, LoopNest]
    arrays: dict[str, ArraySpec]
    budget: ResourceVector
    max_iterations: int = 64
    history: list[OptimizationStep] = field(default_factory=list)

    def _initial_directives(self) -> dict[str, DirectiveSet]:
        """Pipeline everything; unroll small loops (the paper's openers)."""
        out: dict[str, DirectiveSet] = {}
        for name, loop in self.loops.items():
            ds = DirectiveSet(pipeline=PipelineDirective(target_ii=1))
            if loop.trip_count <= SMALL_TRIP_THRESHOLD:
                ds.unroll = UnrollDirective(factor=loop.trip_count)
            out[name] = ds
        return out

    def _schedules(
        self, directives: dict[str, DirectiveSet]
    ) -> dict[str, LoopSchedule]:
        return {
            name: schedule_loop(loop, directives[name], self.arrays)
            for name, loop in self.loops.items()
        }

    def _total_resources(
        self,
        directives: dict[str, DirectiveSet],
        schedules: dict[str, LoopSchedule],
    ) -> ResourceVector:
        total = ResourceVector()
        for name, loop in self.loops.items():
            total = total + loop_resources(loop, schedules[name])
        total = total + array_resources(self.arrays, directives)
        return total

    def optimize(self) -> tuple[dict[str, DirectiveSet], dict[str, LoopSchedule]]:
        """Run the DSE; returns the final directives and schedules."""
        if not self.loops:
            raise HLSError("optimizer needs at least one loop")
        directives = self._initial_directives()
        schedules = self._schedules(directives)
        if not self._total_resources(directives, schedules).fits_within(
            self.budget
        ):
            raise HLSError(
                "initial (pipeline-only) design already exceeds the budget"
            )

        for iteration in range(self.max_iterations):
            critical = max(schedules, key=lambda n: schedules[n].latency)
            sched = schedules[critical]
            loop = self.loops[critical]

            move: str
            trial = DirectiveSet(
                pipeline=directives[critical].pipeline,
                unroll=directives[critical].unroll,
                partitions=dict(directives[critical].partitions),
            )
            if sched.limiting_factor.startswith("ports:"):
                from ..hls.scheduler import port_limiting_arrays

                tied = port_limiting_arrays(
                    loop,
                    directives[critical],
                    self.arrays,
                    directives[critical].effective_unroll(loop),
                )
                widened: list[str] = []
                for array_name in tied:
                    spec = self.arrays[array_name]
                    current = trial.partition_factor(spec)
                    new_factor = min(
                        current * 2, spec.words, MAX_PARTITION_FACTOR
                    )
                    if new_factor > current:
                        trial.partitions.pop(array_name, None)
                        trial.partitions[array_name] = ArrayPartitionDirective(
                            array=array_name, factor=new_factor
                        )
                        widened.append(f"{array_name} x{new_factor}")
                if not widened:
                    self.history.append(
                        OptimizationStep(
                            iteration,
                            critical,
                            "partition-saturated",
                            sched.latency,
                            sched.latency,
                            False,
                            "all limiting arrays at maximum partitioning",
                        )
                    )
                    break
                move = "partition " + ", ".join(widened)
            elif sched.limiting_factor == "recurrence":
                self.history.append(
                    OptimizationStep(
                        iteration,
                        critical,
                        "stop",
                        sched.latency,
                        sched.latency,
                        False,
                        "unresolved inter-iteration dependency",
                    )
                )
                break
            elif (
                loop.trip_count <= SMALL_TRIP_THRESHOLD
                and trial.effective_unroll(loop) < loop.trip_count
            ):
                trial.unroll = UnrollDirective(factor=loop.trip_count)
                move = "unroll complete"
            else:
                self.history.append(
                    OptimizationStep(
                        iteration,
                        critical,
                        "stop",
                        sched.latency,
                        sched.latency,
                        False,
                        "no move available at II limit",
                    )
                )
                break

            trial_directives = dict(directives)
            trial_directives[critical] = trial
            trial_schedules = self._schedules(trial_directives)
            resources = self._total_resources(trial_directives, trial_schedules)
            new_latency = trial_schedules[critical].latency
            if not resources.fits_within(self.budget):
                self.history.append(
                    OptimizationStep(
                        iteration,
                        critical,
                        move,
                        sched.latency,
                        new_latency,
                        False,
                        "resource over-utilization",
                    )
                )
                break
            if new_latency >= sched.latency:
                self.history.append(
                    OptimizationStep(
                        iteration,
                        critical,
                        move,
                        sched.latency,
                        new_latency,
                        False,
                        "no latency improvement",
                    )
                )
                break
            directives = trial_directives
            schedules = trial_schedules
            self.history.append(
                OptimizationStep(
                    iteration,
                    critical,
                    move,
                    sched.latency,
                    new_latency,
                    True,
                    "improved",
                )
            )
        return directives, schedules
