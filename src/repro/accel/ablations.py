"""Single-optimization ablation variants of the proposed design.

The paper motivates four architectural decisions (TLP restructuring,
per-array AXI assignment, decoupled RKU interfaces, SLR splitting); the
ablations quantify each by disabling exactly one of them and re-running
the full timing model. Used by ``benchmarks/test_ablations.py``.
"""

from __future__ import annotations

from dataclasses import replace

from ..fpga.device import ALVEO_U200, FPGADevice
from .calibration import DEFAULT_CALIBRATION, AcceleratorCalibration
from .designs import (
    AcceleratorDesign,
    PROPOSED_OPTIONS,
    custom_design,
)

#: Name -> option override disabling one optimization.
ABLATION_VARIANTS = {
    "no-element-tlp": {"element_dataflow": False},
    "no-node-tlp": {"node_dataflow": False},
    "single-load-interface": {
        "num_load_interfaces": 1,
        "num_store_interfaces": 1,
    },
    "coupled-rku": {"decoupled_rku": False},
    "shared-slr": {"split_slrs": False},
}


def ablated_design(
    name: str,
    device: FPGADevice = ALVEO_U200,
    calibration: AcceleratorCalibration = DEFAULT_CALIBRATION,
) -> AcceleratorDesign:
    """The proposed design with one optimization removed."""
    try:
        overrides = ABLATION_VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(ABLATION_VARIANTS))
        raise KeyError(f"unknown ablation {name!r}; known: {known}") from None
    options = replace(
        PROPOSED_OPTIONS, name=f"proposed-{name}", **overrides
    )
    return custom_design(options, device, calibration)


def all_ablations(
    device: FPGADevice = ALVEO_U200,
    calibration: AcceleratorCalibration = DEFAULT_CALIBRATION,
) -> dict[str, AcceleratorDesign]:
    """All ablated designs keyed by ablation name."""
    return {
        name: ablated_design(name, device, calibration)
        for name in ABLATION_VARIANTS
    }
