"""Array-to-AXI-interface assignment (paper Section III-C, Fig. 4).

Two cooperating optimizations:

1. **Per-array assignment** — arrays accessed by the *same* task are
   spread over distinct interfaces so their transfers proceed in
   parallel ("we schedule memory accesses concurrently by assigning
   them to separate AXI interfaces");
2. **Interface reuse** — arrays of *mutually exclusive* tasks (e.g. the
   LOAD-Element and STORE-Element-Contribution loops, which never run on
   the same data concurrently within an interface slot) may share an
   interface without contention ("interface reuse for arrays accessed by
   different tasks during successive steps of the algorithm").

Formally this is coloring of a conflict graph: vertices are arrays,
edges join arrays whose tasks can be simultaneously active on the
memory system; colors are interfaces. We color greedily in
largest-traffic-first order, balancing loads within a color.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import FPGAError
from ..fpga.axi import MemoryPort


@dataclass
class InterfaceAssignment:
    """The result: interface name -> ports routed through it."""

    assignment: dict[str, list[MemoryPort]] = field(default_factory=dict)
    #: task name -> interfaces its arrays landed on
    task_interfaces: dict[str, set[str]] = field(default_factory=dict)

    @property
    def num_interfaces(self) -> int:
        return len(self.assignment)

    def interface_of(self, array: str) -> str:
        """Which interface carries the given array."""
        for iface, ports in self.assignment.items():
            if any(p.array == array for p in ports):
                return iface
        raise FPGAError(f"array {array!r} is not assigned")

    def ports_for_task(
        self, task_ports: list[MemoryPort]
    ) -> dict[str, list[MemoryPort]]:
        """Restrict the assignment to one task's ports (for cycle costing)."""
        names = {p.array for p in task_ports}
        out: dict[str, list[MemoryPort]] = {}
        for iface, ports in self.assignment.items():
            mine = [p for p in ports if p.array in names]
            if mine:
                out[iface] = mine
        return out


def _port_weight(port: MemoryPort) -> float:
    """Traffic proxy used to order and balance the coloring."""
    return max(port.values_per_iter, port.accesses_per_iter * 2.0)


def assign_interfaces(
    task_ports: dict[str, list[MemoryPort]],
    concurrent_tasks: list[tuple[str, str]],
    max_interfaces: int,
    interface_prefix: str = "gmem",
) -> InterfaceAssignment:
    """Assign every task's arrays to at most ``max_interfaces`` bundles.

    Parameters
    ----------
    task_ports:
        Task name -> the memory ports it drives.
    concurrent_tasks:
        Pairs of tasks that may be active on the memory system at the
        same time (within one task, all arrays always conflict). Tasks
        not listed together are mutually exclusive and may share
        interfaces freely — the paper's reuse optimization.
    max_interfaces:
        Hard cap (the shell's limit, or a design choice).

    Raises
    ------
    FPGAError
        If the conflict graph needs more colors than ``max_interfaces``.
    """
    if max_interfaces < 1:
        raise FPGAError("max_interfaces must be >= 1")
    conflict = nx.Graph()
    for task, ports in task_ports.items():
        for port in ports:
            conflict.add_node(port.array, port=port, task=task)
    # Arrays of one task MAY share an interface — they merely serialize
    # (the cycle model prices that); hard conflicts exist only between
    # tasks that can drive the memory system simultaneously.
    concurrent = {frozenset(pair) for pair in concurrent_tasks}
    tasks = list(task_ports)
    for i, t1 in enumerate(tasks):
        for t2 in tasks[i + 1 :]:
            if frozenset((t1, t2)) not in concurrent:
                continue
            for p1 in task_ports[t1]:
                for p2 in task_ports[t2]:
                    if p1.array != p2.array:
                        conflict.add_edge(p1.array, p2.array)

    # Greedy balanced coloring, heaviest arrays first.
    ordered = sorted(
        conflict.nodes, key=lambda a: -_port_weight(conflict.nodes[a]["port"])
    )
    colors: dict[str, int] = {}
    color_load: dict[int, float] = {}
    for array in ordered:
        forbidden = {
            colors[nbr] for nbr in conflict.neighbors(array) if nbr in colors
        }
        candidates = [
            c for c in range(max_interfaces) if c not in forbidden
        ]
        if not candidates:
            raise FPGAError(
                f"cannot assign array {array!r}: all {max_interfaces} "
                "interfaces conflict (raise max_interfaces)"
            )
        best = min(candidates, key=lambda c: color_load.get(c, 0.0))
        colors[array] = best
        color_load[best] = color_load.get(best, 0.0) + _port_weight(
            conflict.nodes[array]["port"]
        )

    result = InterfaceAssignment()
    for array, color in colors.items():
        iface = f"{interface_prefix}_{color + 1}"
        result.assignment.setdefault(iface, []).append(
            conflict.nodes[array]["port"]
        )
        task = conflict.nodes[array]["task"]
        result.task_interfaces.setdefault(task, set()).add(iface)
    return result


def single_interface_assignment(
    task_ports: dict[str, list[MemoryPort]], interface_name: str = "gmem"
) -> InterfaceAssignment:
    """Everything on one shared bundle — the Vitis default the paper's
    Fig. 4 optimization replaces."""
    result = InterfaceAssignment()
    all_ports: list[MemoryPort] = []
    for task, ports in task_ports.items():
        all_ports.extend(ports)
        result.task_interfaces.setdefault(task, set()).add(interface_name)
    result.assignment[interface_name] = all_ports
    return result
