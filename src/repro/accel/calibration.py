"""Calibrated constants of the accelerator model, with provenance.

Every number that is not derived from the workload or the device model
lives here, so the calibration surface is explicit and auditable. The
``repro_bands`` note: the paper reports measured wall-clock from a
specific Alveo U200 + Vitis 2021.1 testbed; a Python model cannot derive
those constants from first principles, so they are fitted once against
the paper's headline numbers and then *frozen* — all experiments and
tests consume this single source.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError


@dataclass(frozen=True)
class AcceleratorCalibration:
    """Tunable constants of the RKL/RKU timing model.

    Attributes
    ----------
    gather_overlap:
        Outstanding-read overlap achieved by a pipelined gather loop
        through one AXI adapter. Dependent (connectivity -> data) address
        chains limit overlap to ~2 in Vitis 2021.1; applied equally to
        both designs.
    baseline_node_arith_cycles:
        Extra per-node cycles the *baseline's* fused load+compute node
        loop spends refilling floating-point dependency chains between
        memory stalls (the paper's motivation for restructuring into
        Load-Compute-Store form).
    baseline_store_cycles_per_value:
        Effective per-value cost of the baseline's result write-back on
        the shared interface (write-combining limited).
    rku_read_latency_cycles:
        Interface round-trip that serializes the baseline's
        ``x[i] <- f(x[i], y[i])`` update loops (Section III-C); the
        decoupled design removes it (II = 1).
    store_stream_setup_cycles:
        Per-array burst setup of the proposed design's STORE task.
    pipeline_depth_overhead:
        Additional fill cycles per task for control/handshake.
    """

    gather_overlap: float = 2.0
    baseline_node_arith_cycles: float = 7.0
    baseline_store_cycles_per_value: float = 1.5
    rku_read_latency_cycles: int = 10
    store_stream_setup_cycles: float = 4.0
    pipeline_depth_overhead: int = 12

    def __post_init__(self) -> None:
        if self.gather_overlap < 1.0:
            raise CalibrationError("gather_overlap must be >= 1")
        if self.baseline_node_arith_cycles < 0:
            raise CalibrationError("baseline_node_arith_cycles must be >= 0")
        if self.rku_read_latency_cycles < 1:
            raise CalibrationError("rku_read_latency_cycles must be >= 1")


#: The frozen calibration used by all experiments.
DEFAULT_CALIBRATION = AcceleratorCalibration()
