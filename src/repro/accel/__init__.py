"""The paper's FEM accelerator and its baselines (Sections III & IV).

Builds both evaluated designs from the *same* solver workload:

- :mod:`repro.accel.calibration` — every calibrated model constant, with
  its provenance;
- :mod:`repro.accel.interfaces` — the array-to-AXI-interface assignment
  optimizer (Fig. 4), including interface *reuse* across mutually
  exclusive tasks;
- :mod:`repro.accel.kernels` — RKL / RKU kernel construction: loop
  nests, on-chip arrays, memory ports, dataflow graphs;
- :mod:`repro.accel.optimizer` — the Section III-D iterative II
  minimization (directive DSE under resource constraints);
- :mod:`repro.accel.designs` — the proposed design and the Vitis-HLS
  auto-optimized baseline;
- :mod:`repro.accel.cosim` — end-to-end timing (and functional
  co-simulation against the numpy solver);
- :mod:`repro.accel.ablations` — single-optimization ablation variants;
- :mod:`repro.accel.reports` — resource/timing/power report rendering.
"""

from .calibration import AcceleratorCalibration, DEFAULT_CALIBRATION
from .interfaces import InterfaceAssignment, assign_interfaces
from .kernels import RKLKernelModel, RKUKernelModel, build_rkl_kernel, build_rku_kernel
from .designs import (
    AcceleratorDesign,
    DesignOptions,
    proposed_design,
    vitis_baseline_design,
)
from .optimizer import IIOptimizer, OptimizationStep
from .cosim import (
    CosimResult,
    DesignTiming,
    rk_step_seconds,
    rk_method_seconds,
    end_to_end_step_seconds,
    cosimulate_small_mesh,
    streamed_residual,
)

__all__ = [
    "AcceleratorCalibration",
    "DEFAULT_CALIBRATION",
    "InterfaceAssignment",
    "assign_interfaces",
    "RKLKernelModel",
    "RKUKernelModel",
    "build_rkl_kernel",
    "build_rku_kernel",
    "AcceleratorDesign",
    "DesignOptions",
    "proposed_design",
    "vitis_baseline_design",
    "IIOptimizer",
    "OptimizationStep",
    "CosimResult",
    "DesignTiming",
    "rk_step_seconds",
    "rk_method_seconds",
    "end_to_end_step_seconds",
    "cosimulate_small_mesh",
    "streamed_residual",
]
