"""The two evaluated design points (paper Section IV).

**Proposed** (Section III): Load-Compute-Store element pipeline with
node-level TLP inside COMPUTE, per-array AXI assignment over four load
interfaces (with load/store interface reuse), decoupled RKU interfaces,
RKL and RKU on separate SLRs, and Section III-D DSE directives.

**Vitis baseline** (Section IV-A): the same kernels under the Vitis-HLS
automatic strategy only — no dataflow pragma (tasks run back-to-back per
element), every array on the single default ``gmem`` bundle, coupled RKU
interfaces, both kernels packed into one SLR. Critically, without the
restructuring the merged node loop carries a read-modify-write
recurrence through the element-residual BRAM (load 2 cycles + fadd 7
cycles), capping its II — the dependency the paper's partials staging
removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import HLSError
from ..opcount import NUM_FIELDS
from ..hls.arrays import ArraySpec
from ..hls.directives import DirectiveSet, vitis_default_directives
from ..hls.loops import ArrayAccess, LoopNest
from ..hls.resources import (
    ResourceVector,
    array_resources,
    interface_resources,
    loop_resources,
)
from ..hls.scheduler import LoopSchedule, schedule_loop
from ..fpga.axi import MemoryPort, burst_cycles
from ..fpga.ddr import DDR4_2400, DDRTimings, gather_access_cycles
from ..fpga.device import ALVEO_U200, FPGADevice
from ..fpga.floorplan import (
    Floorplan,
    KernelPlacement,
    clock_for_floorplan,
    plan_floorplan,
)
from ..fpga.power import FPGAPowerModel, PowerReport
from .calibration import DEFAULT_CALIBRATION, AcceleratorCalibration
from .interfaces import (
    InterfaceAssignment,
    assign_interfaces,
    single_interface_assignment,
)
from .kernels import (
    RKLKernelModel,
    RKUKernelModel,
    build_rkl_kernel,
    build_rku_kernel,
)
from .optimizer import IIOptimizer

#: Static-region (XDMA shell + DDR controllers) resources included in
#: post-P&R utilization (the U200 shell occupies ~100k LUT and most of
#: the BRAM-heavy memory-controller columns).
SHELL_RESOURCES = ResourceVector(
    lut=100_000, ff=130_000, bram36=350, uram=7, dsp=12
)
#: Datapath mover per gather interface (address generation, reorder,
#: width conversion, burst FIFOs) — the LOAD/STORE task infrastructure.
DATA_MOVER_COST = ResourceVector(lut=12_000, ff=20_000, bram36=16, dsp=8)
#: DSE resource budget as a fraction of one SLR: beyond this the
#: congestion model drops the achievable clock below the 150 MHz target,
#: which is the paper's stated stopping criterion.
DSE_CLOCK_PRESERVING_BUDGET_FRACTION = 0.40
#: Recurrence II of the baseline's merged node loop: the element-residual
#: accumulation is a read-modify-write through a BRAM port — 2-cycle
#: read + 7-cycle fadd + 1-cycle write + 2 cycles of address/forwarding
#: logic = 12 cycles. The restructured design's partials staging
#: (write-only 2c stage) removes this dependency entirely.
BASELINE_MERGED_RECURRENCE_II = 12


@dataclass(frozen=True)
class DesignOptions:
    """All architectural switches distinguishing the evaluated designs."""

    name: str
    element_dataflow: bool
    node_dataflow: bool
    num_load_interfaces: int
    num_store_interfaces: int
    decoupled_rku: bool
    split_slrs: bool
    directive_strategy: str  # 'dse' | 'vitis-auto'
    batch_elements: int = 1536
    #: GLL polynomial order the kernel models are elaborated at. The
    #: paper evaluates the order-2 (27-node) element; the design-space
    #: exploration sweeps this so each priced configuration's node loops
    #: match the mesh it is priced on.
    polynomial_order: int = 2

    def __post_init__(self) -> None:
        if self.directive_strategy not in ("dse", "vitis-auto"):
            raise HLSError(
                f"unknown directive strategy {self.directive_strategy!r}"
            )
        if self.num_load_interfaces < 1 or self.num_store_interfaces < 1:
            raise HLSError("interface counts must be >= 1")
        if self.polynomial_order < 1:
            raise HLSError("polynomial_order must be >= 1")


PROPOSED_OPTIONS = DesignOptions(
    name="proposed",
    element_dataflow=True,
    node_dataflow=True,
    num_load_interfaces=4,
    num_store_interfaces=2,
    decoupled_rku=True,
    split_slrs=True,
    directive_strategy="dse",
    batch_elements=1792,
)

VITIS_BASELINE_OPTIONS = DesignOptions(
    name="vitis-optimized",
    element_dataflow=False,
    node_dataflow=False,
    num_load_interfaces=1,
    num_store_interfaces=1,
    decoupled_rku=False,
    split_slrs=False,
    directive_strategy="vitis-auto",
    batch_elements=1,  # no URAM staging in the baseline
)


def _merge_node_loops(rkl: RKLKernelModel) -> LoopNest:
    """The baseline's fused 2a+2b+2c node loop (no TLP restructuring)."""
    q = rkl.nodes_per_element
    ops: dict[str, float] = {}
    access_totals: dict[str, tuple[float, float]] = {}
    for loop in rkl.node_loops.values():
        for op, count in loop.ops_per_iter.items():
            ops[op] = ops.get(op, 0.0) + count
        for acc in loop.accesses:
            reads, writes = access_totals.get(acc.array, (0.0, 0.0))
            access_totals[acc.array] = (
                reads + acc.reads_per_iter,
                writes + acc.writes_per_iter,
            )
    accesses = [
        ArrayAccess(array=name, reads_per_iter=r, writes_per_iter=w)
        for name, (r, w) in access_totals.items()
    ]
    return LoopNest(
        name="node_merged",
        trip_count=q,
        ops_per_iter=ops,
        accesses=accesses,
        recurrence_ii=BASELINE_MERGED_RECURRENCE_II,
    )


@dataclass
class AcceleratorDesign:
    """A fully elaborated design point: structure, schedules, placement."""

    options: DesignOptions
    rkl: RKLKernelModel
    rku: RKUKernelModel
    directive_map: dict[str, DirectiveSet]
    node_schedules: dict[str, LoopSchedule]
    rku_schedules: dict[str, LoopSchedule]
    memory_assignment: InterfaceAssignment
    rkl_resources: ResourceVector
    rku_resources: ResourceVector
    floorplan: Floorplan
    clock_mhz: float
    calibration: AcceleratorCalibration = field(default=DEFAULT_CALIBRATION)
    ddr: DDRTimings = field(default=DDR4_2400)

    # -- resource / power -----------------------------------------------------

    @property
    def kernel_resources(self) -> ResourceVector:
        """RKL + RKU (excluding the static shell)."""
        return self.rkl_resources + self.rku_resources

    @property
    def total_resources(self) -> ResourceVector:
        """Post-P&R total including the shell (Table I accounting)."""
        return self.kernel_resources + SHELL_RESOURCES

    def utilization(self, device: FPGADevice = ALVEO_U200) -> dict[str, float]:
        """Percent utilization per resource class (Table I row)."""
        return self.total_resources.utilization_of(device.totals())

    def power_report(self, model: FPGAPowerModel | None = None) -> PowerReport:
        """Board power at this design's clock."""
        model = model or FPGAPowerModel()
        return model.report(self.total_resources, self.clock_mhz)

    # -- RKL timing -------------------------------------------------------------

    def _gather_cycles_per_access(self, num_nodes: int) -> float:
        """Effective cycles per gather access (overlap applied)."""
        return gather_access_cycles(num_nodes, self.ddr) / (
            self.calibration.gather_overlap
        )

    def _interface_load_cycles(
        self, ports: list[MemoryPort], num_nodes: int
    ) -> float:
        """Per-element cycles of one interface serving the given ports."""
        per_access = self._gather_cycles_per_access(num_nodes)
        total = 0.0
        for port in ports:
            if port.pattern == "gather":
                total += port.accesses_per_iter * per_access
            else:
                total += burst_cycles(port.values_per_iter, self.ddr)
        return total

    def load_task_cycles(self, num_nodes: int) -> float:
        """LOAD-element task latency per element (slowest interface)."""
        per_task = self.memory_assignment.ports_for_task(self.rkl.load_ports)
        return max(
            self._interface_load_cycles(ports, num_nodes)
            for ports in per_task.values()
        )

    def store_task_cycles(self, num_nodes: int) -> float:
        """STORE-element-contribution task latency per element."""
        per_task = self.memory_assignment.ports_for_task(self.rkl.store_ports)
        return max(
            self._interface_load_cycles(ports, num_nodes)
            for ports in per_task.values()
        )

    def compute_task_cycles(self) -> tuple[float, float]:
        """COMPUTE task (fill, II) per element.

        With node-level TLP the three node stages pipeline:
        ``fill = sum(depths) + overhead``, ``II_node = max(stage IIs)``;
        without it, the merged node loop's schedule applies directly.
        """
        q = self.rkl.nodes_per_element
        overhead = self.calibration.pipeline_depth_overhead
        if self.options.node_dataflow:
            stages = [
                self.node_schedules[name]
                for name in ("node_load", "node_compute", "node_store")
            ]
            fill = sum(s.depth for s in stages) + overhead
            ii = max(s.achieved_ii for s in stages)
            return fill, float(ii)
        merged = self.node_schedules["node_merged"]
        fill = merged.depth + overhead
        return float(fill), float(merged.achieved_ii)

    def rkl_element_cycles(self, num_nodes: int) -> dict[str, float]:
        """Per-element cycles of the three element-level tasks."""
        fill, node_ii = self.compute_task_cycles()
        q = self.rkl.nodes_per_element
        compute = fill + node_ii * (q - 1)
        return {
            "load": self.load_task_cycles(num_nodes),
            "compute": compute,
            "store": self.store_task_cycles(num_nodes),
        }

    def _split_role_cycles(
        self, pipeline, role_cycles: dict[str, float]
    ) -> dict[str, float]:
        """Distribute per-role latencies over a pipeline's stages.

        LOAD and STORE stages split their role's cycles evenly, while
        COMPUTE stages split theirs in proportion to their per-token
        flop counts (:mod:`repro.pipeline.opcounts`) — so timing,
        op-accounting and functional execution all derive from the same
        stage graph. Group sums reproduce the role totals exactly, which
        keeps the lowered dataflow graph's cycle counts on the analytic
        pipeline laws.
        """
        from ..pipeline.opcounts import pipeline_op_counts

        flops = {
            name: count.flops
            for name, count in pipeline_op_counts(
                pipeline, self.rkl.polynomial_order
            ).items()
        }
        out: dict[str, float] = {}
        for role, stages in pipeline.role_groups():
            total = role_cycles[role]
            if len(stages) == 1:
                out[stages[0].name] = total
                continue
            if role == "compute":
                weights = [flops[s.name] for s in stages]
            else:
                weights = [1.0] * len(stages)
            weight_sum = sum(weights)
            assigned = 0.0
            for stage, weight in zip(stages[:-1], weights[:-1]):
                share = total * weight / weight_sum
                out[stage.name] = share
                assigned += share
            out[stages[-1].name] = total - assigned
        return out

    def _split_role_cycles_cached(
        self, pipeline, role_cycles: dict[str, float]
    ) -> dict[str, float]:
        """Memoized :meth:`_split_role_cycles`.

        The co-simulation lowers the same pipeline at the same node
        count once per compute unit per call (and once per benchmark
        repetition); the flop-weighted split only depends on the
        pipeline's stages and the role totals, both hashable here.
        Pipeline names identify structure (rewrites rename their
        results), so the stage-name tuple in the key is a guard, not
        the discriminator.
        """
        cache = self.__dict__.setdefault("_stage_split_cache", {})
        key = (
            pipeline.name,
            tuple(stage.name for stage in pipeline.stages),
            tuple(sorted(role_cycles.items())),
        )
        if key not in cache:
            cache[key] = self._split_role_cycles(pipeline, role_cycles)
        return dict(cache[key])

    def pipeline_stage_cycles(
        self, pipeline, num_nodes: int
    ) -> dict[str, float]:
        """Per-stage cycles for an RKL operator-pipeline IR instance.

        Each role group shares its element task's analytic latency
        (:meth:`rkl_element_cycles`), split over its stages by
        :meth:`_split_role_cycles`; group sums reproduce the role
        totals, keeping the lowered dataflow graph's cycle counts on the
        analytic ``fill + II * (E - 1)`` model.
        """
        return self._split_role_cycles_cached(
            pipeline, self.rkl_element_cycles(num_nodes)
        )

    def rkl_element_ii(self, num_nodes: int) -> float:
        """Steady-state element II (TLP) or full serial latency (baseline)."""
        cycles = self.rkl_element_cycles(num_nodes)
        if self.options.element_dataflow:
            return max(cycles.values())
        return sum(cycles.values())

    def rkl_fill_cycles(self, num_nodes: int) -> float:
        """First-element latency of the element pipeline."""
        cycles = self.rkl_element_cycles(num_nodes)
        return sum(cycles.values())

    def rkl_stage_cycles(self, num_nodes: int, num_elements: int) -> float:
        """Cycles for one RK stage (all elements through RKL)."""
        if num_elements < 1:
            raise HLSError("num_elements must be >= 1")
        ii = self.rkl_element_ii(num_nodes)
        if self.options.element_dataflow:
            return self.rkl_fill_cycles(num_nodes) + ii * (num_elements - 1)
        return ii * num_elements

    # -- RKU timing ---------------------------------------------------------------

    def rku_fill_cycles(self) -> float:
        """First-node latency of the RKU kernel (fills + SLL crossings).

        The sum over the five update loops of pipeline depth plus the
        SLL-crossing penalty each pays when RKU sits on a non-DDR SLR
        (the paper's placement).
        """
        sll = 0
        if self.options.split_slrs:
            crossings = self.floorplan.crossings("rku")
            sll = crossings * self.floorplan.device.sll_crossing_latency_cycles
        return float(
            sum(sched.depth + sll for sched in self.rku_schedules.values())
        )

    def rku_node_cycles(self, num_nodes: int) -> dict[str, float]:
        """Per-node cycles of the three streamed RKU roles.

        This is the RKU analogue of :meth:`rkl_element_cycles`, used to
        lower the :func:`~repro.pipeline.rk_update.rk_update_pipeline`
        node stream to a cycle-accurate task chain. COMPUTE carries the
        summed achieved II of the five update loops (they share one
        update datapath, so a node retires only when all five quantities
        did); LOAD and STORE are the streaming interfaces, moving the
        node's ``NUM_FIELDS`` doubles per 512-bit AXI beat (8 values) —
        well under the compute II for both evaluated designs, so the
        chain's steady state reproduces the ``sum(II) * (N - 1)`` term
        of :meth:`rku_step_cycles`.
        """
        stream = NUM_FIELDS / 8.0
        ii_total = float(
            sum(sched.achieved_ii for sched in self.rku_schedules.values())
        )
        return {"load": stream, "compute": ii_total, "store": stream}

    def rku_pipeline_stage_cycles(
        self, pipeline, num_nodes: int
    ) -> dict[str, float]:
        """Per-stage cycles for an RK-update pipeline IR instance.

        The role latencies come from :meth:`rku_node_cycles` and are
        split over the pipeline's stages by :meth:`_split_role_cycles`
        (flop-weighted within COMPUTE), mirroring
        :meth:`pipeline_stage_cycles` — one latency model for both
        halves of the RK step, derived from the same IR.
        """
        return self._split_role_cycles_cached(
            pipeline, self.rku_node_cycles(num_nodes)
        )

    def rku_step_cycles(self, num_nodes: int) -> float:
        """Cycles for the RKU update of one time step (5 update loops).

        The loops run back-to-back over all nodes; each retires one node
        per achieved II, so the total is the kernel fill
        (:meth:`rku_fill_cycles`) plus the per-node compute cycles of
        :meth:`rku_node_cycles` scaled by the remaining nodes — the
        closed form the full-step co-simulation's RKU trace must
        reproduce.
        """
        return self.rku_fill_cycles() + self.rku_node_cycles(num_nodes)[
            "compute"
        ] * (num_nodes - 1)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """One-paragraph design summary."""
        fill, ii = self.compute_task_cycles()
        return (
            f"design {self.options.name!r}: clock {self.clock_mhz:.0f} MHz, "
            f"{'TLP' if self.options.element_dataflow else 'sequential'} "
            f"element tasks, node II {ii:.0f}, "
            f"{self.memory_assignment.num_interfaces} AXI interfaces, "
            f"SLRs: {sorted(set(self.floorplan.assignments.values()))}"
        )


def _rku_directives(rku: RKUKernelModel) -> dict[str, DirectiveSet]:
    """RKU loops are simple streams: pipeline them all."""
    from ..hls.directives import PipelineDirective

    return {
        loop.name: DirectiveSet(pipeline=PipelineDirective(target_ii=1))
        for loop in rku.update_loops
    }


def _schedule_rku(rku: RKUKernelModel) -> dict[str, LoopSchedule]:
    directives = _rku_directives(rku)
    return {
        loop.name: schedule_loop(loop, directives[loop.name], rku.onchip_arrays)
        for loop in rku.update_loops
    }


def _rkl_interface_count(options: DesignOptions) -> int:
    """Distinct RKL interfaces after load/store reuse."""
    return max(options.num_load_interfaces, options.num_store_interfaces)


def _rku_interface_count(options: DesignOptions) -> int:
    """RKU interfaces: decoupled designs pay a read+write pair per stream
    group (4 pairs); the baseline shares one bundle."""
    return 8 if options.decoupled_rku else 1


def _build_design(
    options: DesignOptions,
    device: FPGADevice,
    calibration: AcceleratorCalibration,
) -> AcceleratorDesign:
    rkl = build_rkl_kernel(
        polynomial_order=options.polynomial_order,
        batch_elements=options.batch_elements,
    )
    rku = build_rku_kernel(
        options.decoupled_rku, calibration.rku_read_latency_cycles
    )

    # -- interface assignment ---------------------------------------------------
    task_ports = {"load": rkl.load_ports, "store": rkl.store_ports}
    if options.num_load_interfaces == 1 and options.num_store_interfaces == 1:
        assignment = single_interface_assignment(task_ports)
    else:
        # Load and store phases alternate on the staging batches, so their
        # arrays may reuse interfaces (no concurrent pair declared).
        assignment = assign_interfaces(
            task_ports,
            concurrent_tasks=[],
            max_interfaces=_rkl_interface_count(options),
        )

    # -- directive selection & scheduling -----------------------------------------
    scratch_arrays = {
        name: spec
        for name, spec in rkl.onchip_arrays.items()
        if not name.startswith("stage_")
    }
    if options.node_dataflow:
        rkl_loops: dict[str, LoopNest] = dict(rkl.node_loops)
    else:
        rkl_loops = {"node_merged": _merge_node_loops(rkl)}
    if options.directive_strategy == "dse":
        # The paper stops optimizing before "resource over-utilization,
        # which would result in lower clock frequencies": utilization
        # beyond ~40% of the SLR pushes the congestion-derated clock
        # under the 150 MHz target, so that is the DSE budget.
        slr_budget = device.slrs[0].resources.scaled(
            DSE_CLOCK_PRESERVING_BUDGET_FRACTION
        )
        optimizer = IIOptimizer(
            loops=rkl_loops,
            arrays=scratch_arrays,
            budget=slr_budget,
        )
        directive_map, node_schedules = optimizer.optimize()
    else:
        directive_map = {}
        node_schedules = {}
        for name, loop in rkl_loops.items():
            directives = vitis_default_directives(loop, scratch_arrays)
            directive_map[name] = directives
            node_schedules[name] = schedule_loop(
                loop, directives, scratch_arrays
            )

    rku_schedules = _schedule_rku(rku)

    # -- resources ------------------------------------------------------------------
    rkl_loop_res = ResourceVector()
    for name, loop in rkl_loops.items():
        rkl_loop_res = rkl_loop_res + loop_resources(
            loop, node_schedules[name]
        )
    rkl_array_res = array_resources(rkl.onchip_arrays, directive_map)
    num_gather_ifaces = sum(
        1
        for ports in assignment.assignment.values()
        if any(p.pattern == "gather" for p in ports)
    )
    rkl_res = (
        rkl_loop_res
        + rkl_array_res
        + interface_resources(_rkl_interface_count(options))
        + DATA_MOVER_COST.scaled(num_gather_ifaces)
    )

    rku_loop_res = ResourceVector()
    for loop in rku.update_loops:
        rku_loop_res = rku_loop_res + loop_resources(
            loop, rku_schedules[loop.name]
        )
    rku_res = (
        rku_loop_res
        + array_resources(rku.onchip_arrays, _rku_directives(rku))
        + interface_resources(_rku_interface_count(options))
        + DATA_MOVER_COST.scaled(2 if options.decoupled_rku else 1)
    )

    # -- floorplan & clock ---------------------------------------------------------
    if options.split_slrs:
        placements = [
            KernelPlacement(
                "rkl", rkl_res, needs_ddr_attach=True, slr="SLR0"
            ),
            KernelPlacement("rku", rku_res, slr="SLR1"),
        ]
    else:
        placements = [
            KernelPlacement(
                "rkl", rkl_res, needs_ddr_attach=True, slr="SLR0"
            ),
            KernelPlacement("rku", rku_res, slr="SLR0"),
        ]
    plan = plan_floorplan(device, placements)
    clock = clock_for_floorplan(plan)

    return AcceleratorDesign(
        options=options,
        rkl=rkl,
        rku=rku,
        directive_map=directive_map,
        node_schedules=node_schedules,
        rku_schedules=rku_schedules,
        memory_assignment=assignment,
        rkl_resources=rkl_res,
        rku_resources=rku_res,
        floorplan=plan,
        clock_mhz=clock,
        calibration=calibration,
    )


def proposed_design(
    device: FPGADevice = ALVEO_U200,
    calibration: AcceleratorCalibration = DEFAULT_CALIBRATION,
) -> AcceleratorDesign:
    """The paper's proposed accelerator (Section III)."""
    return _build_design(PROPOSED_OPTIONS, device, calibration)


def vitis_baseline_design(
    device: FPGADevice = ALVEO_U200,
    calibration: AcceleratorCalibration = DEFAULT_CALIBRATION,
) -> AcceleratorDesign:
    """The Vitis-HLS auto-optimized baseline (Section IV-A)."""
    return _build_design(VITIS_BASELINE_OPTIONS, device, calibration)


def custom_design(
    options: DesignOptions,
    device: FPGADevice = ALVEO_U200,
    calibration: AcceleratorCalibration = DEFAULT_CALIBRATION,
) -> AcceleratorDesign:
    """Build an arbitrary design point (used by the ablation studies)."""
    return _build_design(options, device, calibration)
