"""Multi-compute-unit scaling — the paper's future-work direction.

The paper closes by "paving the way for tackling even more challenging
CFD simulations". The natural next step on the U200 is a second RKL
compute unit: the board has *two* DDR-attached SLRs (SLR0 and SLR2, each
with its own pair of DDR4 channels), so the element stream can be split
across two identical RKL instances with no shared memory bandwidth,
while RKU stays on SLR1 between them.

This module elaborates that design point from the same kernel models:

- elements are balanced across the CUs
  (:func:`repro.mesh.partition.partition_elements_balanced` semantics);
- each CU keeps the proposed design's element II against *its own* DDR
  channels;
- RKL time per stage becomes the max over CUs (near-halved);
- RKU (whole-mesh update) is unchanged and grows in relative weight —
  the emerging Amdahl bottleneck the analysis surfaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import seconds_from_cycles
from ..errors import ExperimentError
from ..fpga.device import ALVEO_U200, FPGADevice
from ..fpga.floorplan import KernelPlacement, clock_for_floorplan, plan_floorplan
from ..timeint.butcher import RK4, ButcherTableau
from .designs import AcceleratorDesign, proposed_design

#: DDR-attached SLRs on the U200 bound the CU count.
MAX_COMPUTE_UNITS = 2


@dataclass(frozen=True)
class MultiCUTiming:
    """Per-step timing of an N-CU configuration."""

    num_compute_units: int
    num_nodes: int
    clock_mhz: float
    rkl_seconds_per_stage: float
    rku_seconds_per_step: float
    num_stages: int

    @property
    def rk_step_seconds(self) -> float:
        return (
            self.rkl_seconds_per_stage * self.num_stages
            + self.rku_seconds_per_step
        )


def multi_cu_floorplan(
    base: AcceleratorDesign,
    num_compute_units: int,
    device: FPGADevice = ALVEO_U200,
):
    """Place N RKL CUs on the DDR-attached SLRs, RKU on SLR1."""
    if not 1 <= num_compute_units <= MAX_COMPUTE_UNITS:
        raise ExperimentError(
            f"num_compute_units must be 1..{MAX_COMPUTE_UNITS}"
        )
    ddr_slrs = [s.name for s in device.ddr_attached_slrs()]
    placements = [
        KernelPlacement(
            f"rkl{cu}",
            base.rkl_resources,
            needs_ddr_attach=True,
            slr=ddr_slrs[cu],
        )
        for cu in range(num_compute_units)
    ]
    placements.append(KernelPlacement("rku", base.rku_resources, slr="SLR1"))
    return plan_floorplan(device, placements)


def multi_cu_timing(
    num_compute_units: int,
    num_nodes: int,
    base: AcceleratorDesign | None = None,
    device: FPGADevice = ALVEO_U200,
    tableau: ButcherTableau = RK4,
) -> MultiCUTiming:
    """Timing of the N-CU configuration at one mesh size."""
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    base = base if base is not None else proposed_design()
    plan = multi_cu_floorplan(base, num_compute_units, device)
    clock = clock_for_floorplan(plan)
    hz = clock * 1e6

    num_elements = max(1, round(num_nodes / base.rkl.polynomial_order**3))
    per_cu = math.ceil(num_elements / num_compute_units)
    # Each CU streams its share against its own DDR channel pair; the
    # gather footprint per CU is its partition of the mesh.
    nodes_per_cu = max(1, round(num_nodes / num_compute_units))
    stage_cycles = base.rkl_fill_cycles(nodes_per_cu) + (
        base.rkl_element_ii(nodes_per_cu) * (per_cu - 1)
    )
    rku_cycles = base.rku_step_cycles(num_nodes)
    return MultiCUTiming(
        num_compute_units=num_compute_units,
        num_nodes=num_nodes,
        clock_mhz=clock,
        rkl_seconds_per_stage=seconds_from_cycles(stage_cycles, hz),
        rku_seconds_per_step=seconds_from_cycles(rku_cycles, hz),
        num_stages=tableau.num_stages,
    )


def scaling_table(
    num_nodes: int,
    base: AcceleratorDesign | None = None,
) -> list[MultiCUTiming]:
    """Timing at 1..MAX CUs for one mesh size."""
    base = base if base is not None else proposed_design()
    return [
        multi_cu_timing(cus, num_nodes, base)
        for cus in range(1, MAX_COMPUTE_UNITS + 1)
    ]


def render_scaling_table(timings: list[MultiCUTiming]) -> str:
    """Readable CU-scaling table with the Amdahl split."""
    lines = [
        f"Multi-CU scaling at {timings[0].num_nodes} nodes",
        f"{'CUs':>4} {'clock':>7} {'RKL s/stage':>13} {'RKU s/step':>12} "
        f"{'RK s/step':>11} {'speedup':>9}",
        "-" * 60,
    ]
    base_step = timings[0].rk_step_seconds
    for t in timings:
        lines.append(
            f"{t.num_compute_units:>4} {t.clock_mhz:>5.0f}M "
            f"{t.rkl_seconds_per_stage:>13.4f} {t.rku_seconds_per_step:>12.4f} "
            f"{t.rk_step_seconds:>11.4f} {base_step / t.rk_step_seconds:>8.2f}x"
        )
    return "\n".join(lines)
