"""Multi-compute-unit scaling — the paper's future-work direction.

The paper closes by "paving the way for tackling even more challenging
CFD simulations". The natural next step on the U200 is a second RKL
compute unit: the board has *two* DDR-attached SLRs (SLR0 and SLR2, each
with its own pair of DDR4 channels), so the element stream can be split
across two identical RKL instances with no shared memory bandwidth,
while RKU stays on SLR1 between them.

This module elaborates that design point from the same kernel models.
The CU ceiling is a property of the *device model*
(:func:`max_compute_units` — the memory-attached SLR count), so
HBM-class boards with more attached SLRs admit ``N > 2`` with no code
change:

- elements are balanced across the CUs
  (:func:`repro.mesh.partition.partition_elements_balanced` semantics);
- each CU keeps the proposed design's element II against *its own* DDR
  channels;
- RKL time per stage becomes the max over CUs (near-halved);
- RKU (whole-mesh update) is unchanged and grows in relative weight —
  the emerging Amdahl bottleneck the analysis surfaces.

Two routes produce a :class:`MultiCUTiming`:

- :func:`multi_cu_timing` — the closed-form model above;
- :func:`multi_cu_timing_from_cosim` — the same quantity derived from a
  *functional* multi-CU co-simulation
  (:func:`repro.accel.cosim.cosimulate_small_mesh` with ``num_cus``):
  the RKL stage time is the max drain cycle over the sharded task
  graphs that computed a real residual, so the timing extension and the
  physics share one execution. The co-simulation runs on the vectorized
  schedule engine by default (``engine="auto"``, exact trace parity
  with the event oracle), which is what makes deriving this timing
  tractable at paper-scale shard sizes and ``N > 2`` CU counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import seconds_from_cycles
from ..errors import ExperimentError
from ..fpga.device import ALVEO_U200, FPGADevice
from ..fpga.floorplan import KernelPlacement, clock_for_floorplan, plan_floorplan
from ..timeint.butcher import RK4, ButcherTableau
from .designs import AcceleratorDesign, proposed_design

def max_compute_units(device: FPGADevice = ALVEO_U200) -> int:
    """Compute-unit ceiling of a device: its memory-attached SLR count.

    Each RKL instance needs its own DDR (or HBM pseudo-channel group)
    attachment to keep the proposed design's per-CU bandwidth; the
    bound is therefore a property of the *device model*, not a
    constant — an HBM-class board with more memory-attached SLRs admits
    ``N > 2`` configurations with no code change here.
    """
    return len(device.ddr_attached_slrs())


#: DDR-attached SLRs on the paper's U200 bound its CU count (kept as a
#: constant for the established import path; prefer
#: :func:`max_compute_units` for other devices).
MAX_COMPUTE_UNITS = max_compute_units(ALVEO_U200)


def nodes_per_compute_unit(num_nodes: int, num_compute_units: int) -> int:
    """Gather footprint of one CU's shard of the mesh.

    Each CU streams its element share against its own DDR channels, so
    its LOAD/STORE latencies are priced at its partition of the node
    space. Shared by the closed-form :func:`multi_cu_timing` and the
    co-simulation lowering (:mod:`repro.accel.cosim`) so the two routes
    cannot silently diverge.
    """
    return max(1, round(num_nodes / num_compute_units))


@dataclass(frozen=True)
class MultiCUTiming:
    """Per-step timing of an N-CU configuration.

    Attributes
    ----------
    num_compute_units:
        RKL compute units the element stream is sharded over.
    num_nodes:
        Mesh size the timing was evaluated at.
    clock_mhz:
        Achieved clock of the multi-CU floorplan.
    rkl_seconds_per_stage:
        One RK stage of the spatial operator: the *max* over CUs (the
        stage completes when the slowest shard drains).
    rku_seconds_per_step:
        The whole-mesh RKU update — unsharded, the Amdahl term.
    num_stages:
        RK stages per time step (the Butcher tableau's count).
    """

    num_compute_units: int
    num_nodes: int
    clock_mhz: float
    rkl_seconds_per_stage: float
    rku_seconds_per_step: float
    num_stages: int

    @property
    def rk_step_seconds(self) -> float:
        """RKL (all stages) + RKU for one time step."""
        return (
            self.rkl_seconds_per_stage * self.num_stages
            + self.rku_seconds_per_step
        )


def multi_cu_floorplan(
    base: AcceleratorDesign,
    num_compute_units: int,
    device: FPGADevice = ALVEO_U200,
):
    """Place N RKL CUs on the DDR-attached SLRs, RKU on SLR1.

    Parameters
    ----------
    base:
        Design whose RKL/RKU resource vectors are replicated/placed.
    num_compute_units:
        RKL instances, ``1..max_compute_units(device)`` (one per
        memory-attached SLR).
    device:
        Target FPGA (defaults to the paper's Alveo U200).

    Returns
    -------
    repro.fpga.floorplan.Floorplan
        The planned placement (drives the achievable clock).

    Raises
    ------
    ExperimentError
        If ``num_compute_units`` is out of range for the device.
    """
    limit = max_compute_units(device)
    if not 1 <= num_compute_units <= limit:
        raise ExperimentError(
            f"num_compute_units must be 1..{limit} on {device.name}"
        )
    ddr_slrs = [s.name for s in device.ddr_attached_slrs()]
    placements = [
        KernelPlacement(
            f"rkl{cu}",
            base.rkl_resources,
            needs_ddr_attach=True,
            slr=ddr_slrs[cu],
        )
        for cu in range(num_compute_units)
    ]
    # RKU keeps the paper's placement on a memory-free SLR when the
    # device has one (SLR1 on the U200); an HBM-class device with every
    # SLR memory-attached co-locates it with the first CU instead.
    non_ddr = [s.name for s in device.slrs if not s.has_ddr_attach]
    rku_slr = non_ddr[0] if non_ddr else device.slrs[0].name
    placements.append(
        KernelPlacement("rku", base.rku_resources, slr=rku_slr)
    )
    return plan_floorplan(device, placements)


def multi_cu_timing(
    num_compute_units: int,
    num_nodes: int,
    base: AcceleratorDesign | None = None,
    device: FPGADevice = ALVEO_U200,
    tableau: ButcherTableau = RK4,
) -> MultiCUTiming:
    """Closed-form timing of the N-CU configuration at one mesh size.

    Parameters
    ----------
    num_compute_units:
        RKL compute units (``1..max_compute_units(device)``).
    num_nodes:
        Mesh nodes; elements are derived from the base design's
        polynomial order and balanced across CUs.
    base:
        Base design point (defaults to the paper's proposed design).
    device:
        Target FPGA for the floorplan/clock.
    tableau:
        RK tableau supplying the per-step stage count.

    Returns
    -------
    MultiCUTiming
        Per-step timing with RKL as the max over CUs and unsharded RKU.

    Raises
    ------
    ExperimentError
        If ``num_nodes < 1`` or the CU count is out of range.
    """
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    base = base if base is not None else proposed_design()
    plan = multi_cu_floorplan(base, num_compute_units, device)
    clock = clock_for_floorplan(plan)
    hz = clock * 1e6

    num_elements = max(1, round(num_nodes / base.rkl.polynomial_order**3))
    per_cu = math.ceil(num_elements / num_compute_units)
    nodes_per_cu = nodes_per_compute_unit(num_nodes, num_compute_units)
    stage_cycles = base.rkl_fill_cycles(nodes_per_cu) + (
        base.rkl_element_ii(nodes_per_cu) * (per_cu - 1)
    )
    rku_cycles = base.rku_step_cycles(num_nodes)
    return MultiCUTiming(
        num_compute_units=num_compute_units,
        num_nodes=num_nodes,
        clock_mhz=clock,
        rkl_seconds_per_stage=seconds_from_cycles(stage_cycles, hz),
        rku_seconds_per_step=seconds_from_cycles(rku_cycles, hz),
        num_stages=tableau.num_stages,
    )


def multi_cu_timing_from_cosim(
    result,
    num_nodes: int,
    base: AcceleratorDesign | None = None,
    device: FPGADevice = ALVEO_U200,
    tableau: ButcherTableau = RK4,
) -> MultiCUTiming:
    """Derive :class:`MultiCUTiming` from a multi-CU co-simulation.

    This is the unification of the timing extension with the functional
    co-simulator: instead of the closed-form element-II model, the RKL
    stage time comes from the *simulated* task graphs that streamed real
    element blocks — the max drain cycle over compute units on the
    shared simulator clock (``result.per_cu_cycles``). Clock and RKU are
    shared with :func:`multi_cu_timing` (the RKU update is not part of
    the streamed RKL graph), so the two routes are directly comparable
    and must agree at block size 1 — asserted by the test suite.

    Parameters
    ----------
    result:
        A :class:`repro.accel.cosim.CosimResult` from
        :func:`repro.accel.cosim.cosimulate_small_mesh` run with
        ``num_cus`` — anything exposing ``num_compute_units`` and
        non-empty ``per_cu_cycles`` works.
    num_nodes:
        Mesh nodes of the co-simulated mesh (for the RKU term).
    base:
        Base design point (defaults to the paper's proposed design);
        must be the design the co-simulation ran.
    device:
        Target FPGA for the floorplan/clock.
    tableau:
        RK tableau supplying the per-step stage count.

    Returns
    -------
    MultiCUTiming
        Timing whose RKL stage seconds are simulated, not modeled.

    Raises
    ------
    ExperimentError
        If ``result`` carries no per-CU cycles or ``num_nodes < 1``.
    """
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    if not result.per_cu_cycles:
        raise ExperimentError(
            "result carries no per-CU cycles; run cosimulate_small_mesh "
            "with num_cus set"
        )
    base = base if base is not None else proposed_design()
    num_compute_units = result.num_compute_units
    plan = multi_cu_floorplan(base, num_compute_units, device)
    clock = clock_for_floorplan(plan)
    hz = clock * 1e6
    stage_cycles = max(result.per_cu_cycles)
    return MultiCUTiming(
        num_compute_units=num_compute_units,
        num_nodes=num_nodes,
        clock_mhz=clock,
        rkl_seconds_per_stage=seconds_from_cycles(stage_cycles, hz),
        rku_seconds_per_step=seconds_from_cycles(
            base.rku_step_cycles(num_nodes), hz
        ),
        num_stages=tableau.num_stages,
    )


def scaling_table(
    num_nodes: int,
    base: AcceleratorDesign | None = None,
    device: FPGADevice = ALVEO_U200,
) -> list[MultiCUTiming]:
    """Closed-form timing at 1..max CUs for one mesh size.

    Returns one :func:`multi_cu_timing` row per CU count the device
    admits (:func:`max_compute_units`), ready for
    :func:`render_scaling_table`.
    """
    base = base if base is not None else proposed_design()
    return [
        multi_cu_timing(cus, num_nodes, base, device)
        for cus in range(1, max_compute_units(device) + 1)
    ]


def render_scaling_table(timings: list[MultiCUTiming]) -> str:
    """Readable CU-scaling table with the Amdahl split.

    ``timings`` must be non-empty; the first row is the speedup
    baseline.
    """
    lines = [
        f"Multi-CU scaling at {timings[0].num_nodes} nodes",
        f"{'CUs':>4} {'clock':>7} {'RKL s/stage':>13} {'RKU s/step':>12} "
        f"{'RK s/step':>11} {'speedup':>9}",
        "-" * 60,
    ]
    base_step = timings[0].rk_step_seconds
    for t in timings:
        lines.append(
            f"{t.num_compute_units:>4} {t.clock_mhz:>5.0f}M "
            f"{t.rkl_seconds_per_stage:>13.4f} {t.rku_seconds_per_step:>12.4f} "
            f"{t.rk_step_seconds:>11.4f} {base_step / t.rk_step_seconds:>8.2f}x"
        )
    return "\n".join(lines)
