"""Timing evaluation and functional co-simulation of a design.

Two granularities:

- **analytic** (:func:`rk_step_seconds` and friends): steady-state
  extrapolation used at paper-scale mesh sizes — verified against the
  cycle-level dataflow simulation by the test suite;
- **cycle-level** (:func:`cosimulate_small_mesh`): lowers the operator
  pipeline IR (:func:`repro.pipeline.element_pipeline`) to a
  :class:`~repro.dataflow.graph.DataflowGraph` whose tasks carry
  payload actions, then streams every element of a real (small) mesh
  through it — the run prices the pipeline *and* computes it. The
  streamed residual must reproduce
  :meth:`~repro.solver.navier_stokes.NavierStokesOperator.residual` to
  rounding error while the cycle count still matches the analytic
  ``fill + II * (E - 1)`` model: the accelerator computes the *same
  physics* the timing model prices, by construction from one IR.

Streaming is *batched* and *shardable*: tokens carry element blocks
(``block_size`` elements per simulated pipeline iteration, latencies
scaled per block — see :func:`analytic_block_cycles`), and the element
stream can be split across ``num_cus`` parallel task-graph instances
merged under one simulator clock
(:func:`~repro.mesh.partition.partition_elements_balanced` semantics,
per-CU partial residuals reduced before finalization). The multi-CU
timing extension (:mod:`repro.accel.multi_cu`) derives its
:class:`~repro.accel.multi_cu.MultiCUTiming` from the same co-simulated
graphs via
:func:`~repro.accel.multi_cu.multi_cu_timing_from_cosim`, so timing,
op-counts, and functional execution share one source of truth.

Co-simulation also covers the *whole* RK time step
(:func:`cosimulate_rk_stage`): every stage's RKL element stream chains
into the RK-update node stream (the
:func:`~repro.pipeline.rk_update.rk_update_pipeline` lowering) under one
simulator clock, sequenced by kernel dependencies
(:attr:`~repro.dataflow.task.Task.depends_on`); the streamed final
state must match :meth:`repro.solver.simulation.Simulation.step` to
rounding error, and :func:`design_timing_from_rk_cosim` turns the trace
into a :class:`DesignTiming` whose RKU seconds are simulated rather than
modeled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import seconds_from_cycles
from ..dataflow.graph import DataflowGraph, merge_graphs
from ..dataflow.simulator import DataflowSimulator, SimulationTrace
from ..dataflow.task import BlockLatency, Task
from ..errors import ExperimentError
from ..mesh.hexmesh import HexMesh, elements_for_node_count
from ..mesh.partition import element_blocks, partition_elements_balanced
from ..physics.state import NUM_CONSERVED, FlowState
from ..pipeline import (
    DEFAULT_TASK_NAMES,
    RK_UPDATE_TASK_NAMES,
    OperatorPipeline,
    PipelineContext,
    RKUpdateContext,
    element_pipeline,
    node_blocks,
    rk_update_pipeline,
    rk_update_streaming_actions,
    streaming_actions,
)
from ..timeint.butcher import RK4, ButcherTableau
from .designs import AcceleratorDesign
from .multi_cu import nodes_per_compute_unit


@dataclass(frozen=True)
class DesignTiming:
    """Seconds per time step of one design on one mesh size."""

    design_name: str
    num_nodes: int
    num_elements: int
    clock_mhz: float
    rkl_seconds_per_stage: float
    rku_seconds_per_step: float
    num_stages: int

    @property
    def rk_step_seconds(self) -> float:
        """RKL (all stages) + RKU for one time step."""
        return self.rkl_seconds_per_stage * self.num_stages + (
            self.rku_seconds_per_step
        )


def design_timing(
    design: AcceleratorDesign,
    num_nodes: int,
    num_elements: int | None = None,
    tableau: ButcherTableau = RK4,
) -> DesignTiming:
    """Analytic timing of one design at one mesh size.

    Parameters
    ----------
    design:
        The elaborated design point.
    num_nodes:
        Mesh nodes; ``num_elements`` is derived from the design's
        polynomial order when not given.
    num_elements:
        Optional explicit element count.
    tableau:
        RK tableau supplying the per-step stage count.

    Raises
    ------
    ExperimentError
        If ``num_nodes < 1``.
    """
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    if num_elements is None:
        num_elements = elements_for_node_count(
            num_nodes, design.rkl.polynomial_order
        )
    hz = design.clock_mhz * 1e6
    rkl_cycles = design.rkl_stage_cycles(num_nodes, num_elements)
    rku_cycles = design.rku_step_cycles(num_nodes)
    return DesignTiming(
        design_name=design.options.name,
        num_nodes=num_nodes,
        num_elements=num_elements,
        clock_mhz=design.clock_mhz,
        rkl_seconds_per_stage=seconds_from_cycles(rkl_cycles, hz),
        rku_seconds_per_step=seconds_from_cycles(rku_cycles, hz),
        num_stages=tableau.num_stages,
    )


def rk_step_seconds(
    design: AcceleratorDesign, num_nodes: int, tableau: ButcherTableau = RK4
) -> float:
    """Seconds for one RK time step (RKL x stages + RKU)."""
    return design_timing(design, num_nodes, tableau=tableau).rk_step_seconds


def rk_method_seconds(
    design: AcceleratorDesign,
    num_nodes: int,
    num_steps: int,
    tableau: ButcherTableau = RK4,
) -> float:
    """Seconds for the RK method over a whole run (Fig. 5's metric).

    Raises :class:`~repro.errors.ExperimentError` if ``num_steps < 1``.
    """
    if num_steps < 1:
        raise ExperimentError("num_steps must be >= 1")
    return rk_step_seconds(design, num_nodes, tableau) * num_steps


def end_to_end_step_seconds(
    design: AcceleratorDesign,
    num_nodes: int,
    host_non_rk_seconds: float,
    pcie_seconds: float = 0.0,
    tableau: ButcherTableau = RK4,
) -> float:
    """End-to-end step: host non-RK work + accelerator RK + PCIe sync.

    This is the Section IV-B comparison: the host retains the non-RK
    phases ("The remaining computations are handled by the host CPU")
    while the accelerator executes the RK method.
    """
    if host_non_rk_seconds < 0 or pcie_seconds < 0:
        raise ExperimentError("times must be >= 0")
    return (
        host_non_rk_seconds
        + rk_step_seconds(design, num_nodes, tableau)
        + pcie_seconds
    )


# ---------------------------------------------------------------------------
# Cycle-level co-simulation
# ---------------------------------------------------------------------------


def build_rkl_dataflow_graph(
    design: AcceleratorDesign,
    num_nodes: int,
    pipeline: OperatorPipeline | None = None,
    actions=None,
    *,
    block_sizes=None,
    task_names=None,
    name: str | None = None,
) -> DataflowGraph:
    """The element pipeline as an explicit dataflow graph.

    The graph structure is *lowered from the operator pipeline IR* (the
    fused pipeline — the hardware always runs the merged
    diffusion+convection COMPUTE module), with per-stage latencies from
    :meth:`AcceleratorDesign.pipeline_stage_cycles`.

    Parameters
    ----------
    design:
        The design point supplying per-stage latencies and clocking.
    num_nodes:
        Gather footprint priced by the LOAD/STORE memory models — the
        whole mesh for one CU, a CU's share of it under sharding.
    pipeline:
        Operator pipeline to lower (defaults to the fused
        :func:`~repro.pipeline.navier_stokes.element_pipeline`).
    actions:
        Optional per-role payload execution (see
        :func:`repro.pipeline.streaming_actions`) to co-simulate
        functionally.
    block_sizes:
        Elements per token when tokens carry element blocks; task
        latencies scale with each iteration's block size (see
        :meth:`~repro.pipeline.ir.OperatorPipeline.to_task_graph`).
    task_names / name:
        Task renaming and graph name, used by the multi-CU lowering to
        keep per-CU shards distinct inside one merged graph.

    Returns
    -------
    DataflowGraph
        The LOAD -> COMPUTE -> STORE chain. Group sums equal the
        analytic role latencies, so a cycle-level run must agree with
        ``fill + II * (tokens - 1)`` at the token granularity — asserted
        by the integration tests.
    """
    if pipeline is None:
        pipeline = element_pipeline()
    stage_cycles = design.pipeline_stage_cycles(pipeline, num_nodes)
    return pipeline.to_task_graph(
        stage_cycles,
        task_names=task_names,
        actions=actions,
        name=name or f"rkl-{design.options.name}",
        block_sizes=block_sizes,
    )


def _cu_task_names(cu: int) -> dict[str, str]:
    """Role -> task-name mapping of one compute unit's shard."""
    return {
        role: f"cu{cu}.{base}" for role, base in DEFAULT_TASK_NAMES.items()
    }


def _element_partitions(
    num_elements: int, num_cus: int, partitions
) -> list[np.ndarray]:
    """Validated element shards, one per compute unit.

    ``partitions=None`` balances ``num_elements`` over ``num_cus``;
    explicit shards must be non-empty and cover the mesh exactly once.
    """
    if partitions is None:
        if num_cus < 1:
            raise ExperimentError("num_cus must be >= 1")
        partitions = partition_elements_balanced(num_elements, num_cus)
    else:
        partitions = [np.asarray(part, dtype=np.int64) for part in partitions]
    if any(part.size == 0 for part in partitions):
        raise ExperimentError(
            "every compute unit needs at least one element; fewer CUs "
            "than elements required"
        )
    covered = np.sort(np.concatenate(partitions))
    if covered.size != num_elements or not np.array_equal(
        covered, np.arange(num_elements)
    ):
        raise ExperimentError(
            "partitions must cover every mesh element exactly once"
        )
    return partitions




def analytic_block_cycles(
    design: AcceleratorDesign, num_nodes: int, block_sizes
) -> float:
    """Analytic RKL cycles for one CU streaming the given block tokens.

    The block pipeline keeps the element pipeline's cycle law at token
    granularity: task latencies are the per-element role latencies
    scaled by each token's block size (the II scales per block), and the
    total follows the tandem-pipeline recurrence
    ``finish(t, i) = max(finish(t, i-1), finish(t-1, i)) + c_t * b_i``.
    For uniform blocks this closes to the familiar
    ``fill_B + II_B * (tokens - 1)``, and one-element blocks recover the
    paper's ``fill + II * (E - 1)``; the short tail block of a
    non-divisor split only perturbs the drain term, which the recurrence
    prices exactly. The baseline without element-level dataflow stays on
    its serial ``II_serial * E`` regardless of blocking (tasks run
    back-to-back either way).

    Parameters
    ----------
    design:
        Design point (role latencies, dataflow on/off).
    num_nodes:
        Gather footprint the LOAD/STORE latencies are priced at.
    block_sizes:
        Elements per token, in stream order.

    Raises
    ------
    ExperimentError
        If ``block_sizes`` is empty.
    """
    sizes = [int(size) for size in block_sizes]
    if not sizes:
        raise ExperimentError("block_sizes must be non-empty")
    if not design.options.element_dataflow:
        return design.rkl_element_ii(num_nodes) * sum(sizes)
    role_cycles = list(design.rkl_element_cycles(num_nodes).values())
    finish = [0.0] * len(role_cycles)
    for size in sizes:
        upstream = 0.0
        for task, cycles in enumerate(role_cycles):
            finish[task] = max(finish[task], upstream) + cycles * size
            upstream = finish[task]
    return finish[-1]


def analytic_rku_step_cycles(
    design: AcceleratorDesign,
    num_nodes: int,
    node_block_size: int = 32,
) -> float:
    """Closed-form cycles of the *streamed* RKU chain.

    :meth:`AcceleratorDesign.rku_step_cycles` prices the update loops
    alone; the streamed chain the co-simulation (and the exact schedule
    solve) runs also carries the LOAD/STORE streaming interfaces around
    them. This is the chain's tandem-pipeline recurrence — the RKU
    analogue of :func:`analytic_block_cycles` — with the kernel-launch
    fill charged to the first token: the closed form the design-space
    exploration's cheap tier uses so its promoted points agree with the
    exact tier at any mesh size, not just where the update loops
    dominate.

    Raises :class:`~repro.errors.ExperimentError` on invalid sizes.
    """
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    if node_block_size < 1:
        raise ExperimentError("node_block_size must be >= 1")
    role_cycles = list(design.rku_node_cycles(num_nodes).values())
    finish = [0.0] * len(role_cycles)
    for block in node_blocks(num_nodes, node_block_size):
        upstream = 0.0
        for task, cycles in enumerate(role_cycles):
            finish[task] = max(finish[task], upstream) + cycles * block.size
            upstream = finish[task]
    return design.rku_fill_cycles() + finish[-1]


def exact_rkl_stage_cycles(
    design: AcceleratorDesign,
    num_nodes: int,
    num_elements: int,
    *,
    block_size: int = 1,
    num_cus: int = 1,
    partitions=None,
    pipeline: OperatorPipeline | None = None,
) -> int:
    """Exact RKL stage cycles from the schedule engine, *without* payloads.

    The middle rung of the design-space exploration's evaluation ladder:
    the same lowered graphs a payload-carrying co-simulation would run
    (per-CU chains from :func:`build_rkl_dataflow_graph`, merged under
    one clock) priced by :func:`repro.dataflow.analysis.exact_cycles`
    alone — an exact schedule solve at array-recurrence cost, with no
    mesh, state, or actions built. Agreement with both the closed form
    (:func:`analytic_block_cycles`) and the full co-simulation is
    asserted by the tier-agreement tests.

    Parameters
    ----------
    design:
        Design point pricing the pipeline.
    num_nodes / num_elements:
        Whole-mesh sizes; each CU prices its LOAD/STORE at its node
        share (:func:`~repro.accel.multi_cu.nodes_per_compute_unit`).
    block_size:
        Elements per token.
    num_cus / partitions:
        Element sharding, as in :func:`streamed_residual`.
    pipeline:
        Operator pipeline to lower (defaults to the fused element
        pipeline).

    Raises
    ------
    ExperimentError
        On invalid ``block_size`` or sharding.
    """
    from ..dataflow.analysis import exact_cycles

    if block_size < 1:
        raise ExperimentError("block_size must be >= 1")
    if pipeline is None:
        pipeline = element_pipeline()
    partitions = _element_partitions(num_elements, num_cus, partitions)
    num_cus = len(partitions)
    nodes_per_cu = nodes_per_compute_unit(num_nodes, num_cus)

    subgraphs: list[DataflowGraph] = []
    iterations: dict[str, int] = {}
    for cu, part in enumerate(partitions):
        blocks = element_blocks(part, block_size)
        graph = build_rkl_dataflow_graph(
            design,
            nodes_per_cu,
            pipeline=pipeline,
            block_sizes=(
                None if block_size == 1 else [block.size for block in blocks]
            ),
            task_names=None if num_cus == 1 else _cu_task_names(cu),
            name=(
                f"rkl-exact-{design.options.name}"
                if num_cus == 1
                else f"rkl-exact-{design.options.name}-cu{cu}"
            ),
        )
        for task_name in graph.tasks:
            iterations[task_name] = len(blocks)
        subgraphs.append(graph)
    if num_cus == 1:
        graph = subgraphs[0]
    else:
        graph = merge_graphs(
            f"rkl-exact-{design.options.name}-{num_cus}cu", subgraphs
        )
    return exact_cycles(graph, iterations)


def exact_rku_step_cycles(
    design: AcceleratorDesign,
    num_nodes: int,
    node_block_size: int = 32,
) -> int:
    """Exact RKU step cycles from the schedule engine, without payloads.

    The RKU counterpart of :func:`exact_rkl_stage_cycles`: the final
    update chain (b-row combination + primitive update,
    :func:`~repro.pipeline.rk_update.rk_update_pipeline` lowering, with
    the kernel-launch fill the closed form charges) solved exactly with
    no node payloads streamed.

    Raises :class:`~repro.errors.ExperimentError` on invalid sizes.
    """
    from ..dataflow.analysis import exact_cycles

    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    if node_block_size < 1:
        raise ExperimentError("node_block_size must be >= 1")
    blocks = node_blocks(num_nodes, node_block_size)
    pipeline = rk_update_pipeline(primitives=True)
    template = _ChainTemplate(
        pipeline,
        design.rku_pipeline_stage_cycles(pipeline, num_nodes),
        block_sizes=[block.size for block in blocks],
    )
    graph = template.instantiate(
        dict(RK_UPDATE_TASK_NAMES),
        None,
        name=f"rku-exact-{design.options.name}",
        fill_cycles=design.rku_fill_cycles(),
    )
    return exact_cycles(graph, len(blocks))


def per_cu_simulated_cycles(
    trace: SimulationTrace, num_cus: int
) -> tuple[int, ...]:
    """Per-CU drain cycle extracted from a (possibly merged) trace.

    For a single CU this is the trace total; for a merged multi-CU run
    it is, per compute unit, the last finish time among that CU's
    ``cu<k>.``-prefixed tasks — all measured against the one shared
    simulator clock, so ``max()`` over the result is the RKL stage time.

    Raises
    ------
    ExperimentError
        If the trace has no tasks for one of the requested CUs.
    """
    if num_cus == 1:
        return (trace.total_cycles,)
    cycles: list[int] = []
    for cu in range(num_cus):
        prefix = f"cu{cu}."
        finishes = [
            stats.last_finish or 0
            for name, stats in trace.task_stats.items()
            if name.startswith(prefix)
        ]
        if not finishes:
            raise ExperimentError(
                f"trace {trace.graph_name!r} has no tasks for compute "
                f"unit {cu}"
            )
        cycles.append(max(finishes))
    return tuple(cycles)


def streamed_residual(
    design: AcceleratorDesign,
    operator,
    stacked: np.ndarray,
    pipeline: OperatorPipeline | None = None,
    *,
    block_size: int = 1,
    num_cus: int = 1,
    partitions=None,
    engine: str = "auto",
) -> tuple[np.ndarray, SimulationTrace]:
    """One right-hand side evaluated *through* the cycle simulator.

    Streams every mesh element through the lowered element pipeline —
    each simulated LOAD gathers a real element block, COMPUTE runs the
    fused flux/divergence kernels on it, STORE assembles its
    contribution — then applies the operator's mass inversion and wall
    conditions.

    With ``num_cus > 1`` (or explicit ``partitions``) the element stream
    is sharded across parallel task-graph instances — one per compute
    unit, task names prefixed ``cu<k>.`` — merged into a single graph
    and run under one simulator clock. Each CU assembles a partial
    residual accumulator; the partials are reduced (summed — the
    scatter-add of the per-CU contributions) before
    ``finalize_residual``, so the multi-CU streamed residual is
    bit-for-bit the single-graph reduction order per CU.

    Parameters
    ----------
    design:
        Accelerator design point to price the pipeline with.
    operator:
        A :class:`~repro.solver.navier_stokes.NavierStokesOperator`;
        supplies the mesh wiring, backend, and residual finalization.
    stacked:
        Global state ``(5, N)`` the residual is evaluated at.
    pipeline:
        Operator pipeline instance (defaults to the fused element
        pipeline the hardware runs).
    block_size:
        Elements per token. Larger blocks amortize per-token simulation
        overhead (the lever that lets bigger meshes co-simulate) while
        the cycle law keeps its block-scaled II.
    num_cus:
        Number of compute units to shard across
        (:func:`~repro.mesh.partition.partition_elements_balanced`
        semantics). Ignored when ``partitions`` is given.
    partitions:
        Explicit element shards (1-D index arrays), one per CU; must
        cover every mesh element exactly once.
    engine:
        Simulation engine
        (:meth:`~repro.dataflow.simulator.DataflowSimulator.run`);
        the default ``"auto"`` resolves to the vectorized schedule
        engine, since the streaming actions carry batched forms.

    Returns
    -------
    tuple[numpy.ndarray, SimulationTrace]
        The finalized residual and the simulation trace (one run yields
        both the functional result and the cycle count).

    Raises
    ------
    ExperimentError
        If ``block_size < 1``, a shard is empty, or the partitions do
        not cover the mesh exactly.
    """
    if pipeline is None:
        pipeline = element_pipeline()
    if block_size < 1:
        raise ExperimentError("block_size must be >= 1")
    num_nodes = operator.mesh.num_nodes
    partitions = _element_partitions(
        operator.mesh.num_elements, num_cus, partitions
    )
    num_cus = len(partitions)

    ctx = PipelineContext.from_operator(operator)
    nodes_per_cu = nodes_per_compute_unit(num_nodes, num_cus)
    # Stream the state in the operator's storage dtype and assemble in
    # its accumulation dtype — the same precision policy the functional
    # residual's backend applies, so the two paths stay comparable in
    # every dtype mode.
    precision = operator.precision
    stacked = np.asarray(stacked, dtype=precision.storage)
    acc_dtype = precision.accumulate_for(stacked.dtype)
    accumulators = [
        np.zeros((NUM_CONSERVED, num_nodes), dtype=acc_dtype)
        for _ in partitions
    ]
    subgraphs: list[DataflowGraph] = []
    iterations: dict[str, int] = {}
    for cu, (part, accumulator) in enumerate(zip(partitions, accumulators)):
        blocks = element_blocks(part, block_size)
        actions = streaming_actions(
            pipeline, ctx, stacked, accumulator, blocks=blocks
        )
        graph = build_rkl_dataflow_graph(
            design,
            nodes_per_cu,
            pipeline=pipeline,
            actions=actions,
            block_sizes=(
                None if block_size == 1 else [block.size for block in blocks]
            ),
            task_names=None if num_cus == 1 else _cu_task_names(cu),
            name=(
                f"rkl-{design.options.name}"
                if num_cus == 1
                else f"rkl-{design.options.name}-cu{cu}"
            ),
        )
        for task_name in graph.tasks:
            iterations[task_name] = len(blocks)
        subgraphs.append(graph)
    if num_cus == 1:
        graph = subgraphs[0]
    else:
        graph = merge_graphs(
            f"rkl-{design.options.name}-{num_cus}cu", subgraphs
        )
    trace = DataflowSimulator(graph).run(iterations, engine=engine)
    # Reduce the per-CU partial residuals before finalization, rounding
    # to the storage dtype exactly once (the mixed-mode semantics of the
    # backends' scatter-add).
    total = accumulators[0]
    for accumulator in accumulators[1:]:
        total = total + accumulator
    if total.dtype != stacked.dtype:
        total = total.astype(stacked.dtype)
    return operator.finalize_residual(total), trace


@dataclass
class CosimResult:
    """Functional + timing co-simulation outcome on a small mesh."""

    trace: SimulationTrace
    analytic_cycles: float
    simulated_cycles: int
    #: Functional-run diagnostics; ``None`` when the co-simulation ran
    #: with ``verify=False`` (the checking solve was skipped).
    kinetic_energy: float | None
    mass_drift: float | None
    #: Max-norm relative error of the streamed residual against the
    #: functional operator's, over all five conserved fields; ``None``
    #: under ``verify=False``.
    residual_max_rel_err: float | None
    #: Number of RKL compute units the element stream was sharded over.
    num_compute_units: int = 1
    #: Elements per simulated token (1 = element-at-a-time streaming).
    block_size: int = 1
    #: Per-CU drain cycles on the shared simulator clock; ``max()`` of
    #: these is the RKL stage time of the sharded configuration.
    per_cu_cycles: tuple[int, ...] = ()

    @property
    def cycle_agreement(self) -> float:
        """|simulated - analytic| / analytic."""
        return abs(self.simulated_cycles - self.analytic_cycles) / (
            self.analytic_cycles
        )


def cosimulate_small_mesh(
    design: AcceleratorDesign,
    mesh: HexMesh,
    num_steps: int = 2,
    backend: str | None = None,
    case=None,
    initial_state: FlowState | None = None,
    block_size: int = 1,
    num_cus: int = 1,
    engine: str = "auto",
    num_workers: int | None = None,
    dtype: str | None = None,
    verify: bool = True,
) -> CosimResult:
    """Run functional solve + payload-carrying cycle simulation on one mesh.

    The functional result (from :class:`repro.solver.Simulation`) proves
    the workload is real physics; the cycle-level trace validates the
    analytic extrapolation the experiments rely on; and the streamed
    residual (:func:`streamed_residual`, computed on the initial state)
    proves both executions agree to rounding error.

    Parameters
    ----------
    design:
        Accelerator design point to co-simulate.
    mesh:
        The (small) mesh to stream; with ``block_size > 1`` meshes an
        order of magnitude beyond the single-element streaming limit
        stay tractable, because each simulated token computes a batched
        element block instead of one element.
    num_steps:
        Time steps of the functional solve.
    backend:
        Compute backend for both paths (``None`` defers to the
        ``REPRO_BACKEND`` environment variable, then ``"reference"``).
    case / initial_state:
        The physics (defaults: the TGV case on its standard initial
        condition), so wall-bounded workloads such as the channel shear
        flow co-simulate too.
    block_size:
        Elements per simulated token (see :func:`streamed_residual`).
    num_cus:
        Compute units the element stream is sharded over; the analytic
        reference becomes the max over CUs of the per-CU block law, and
        ``per_cu_cycles`` records each CU's drain cycle.
    engine:
        Simulation engine, forwarded to :func:`streamed_residual`
        (``"auto"`` resolves to the vectorized schedule engine).
    num_workers:
        Worker count when ``backend`` selects a parallel backend
        (``"threaded"``/``"procs"``); ignored by serial backends.
    dtype:
        Precision mode for both paths (``"float64"``, ``"float32"``,
        ``"mixed"``; ``None`` defers to ``REPRO_DTYPE``). Functional
        solve and streamed residual run under the same policy.
    verify:
        ``True`` (default) also runs the functional reference — the
        operator residual the streamed result is checked against and the
        ``num_steps`` solver run behind ``kinetic_energy`` /
        ``mass_drift``. ``False`` skips that duplicate solve (the
        streamed payloads compute identical values either way) and
        leaves the three report fields ``None``.

    Returns
    -------
    CosimResult
        Functional + timing outcome; ``residual_max_rel_err`` must sit
        at rounding error for the co-simulation to be trusted.

    Raises
    ------
    ExperimentError
        On invalid ``block_size``/``num_cus`` (including more CUs than
        elements).
    """
    from ..physics.taylor_green import DEFAULT_TGV
    from ..solver.simulation import Simulation

    if case is None:
        case = DEFAULT_TGV
    sim = Simulation(
        mesh, case, backend=backend, initial_state=initial_state,
        num_workers=num_workers, dtype=dtype,
    )
    initial_stacked = sim.state.as_stacked()
    streamed, trace = streamed_residual(
        design,
        sim.operator,
        initial_stacked,
        block_size=block_size,
        num_cus=num_cus,
        engine=engine,
    )
    residual_err = kinetic = drift = None
    if verify:
        expected = sim.operator.residual(initial_stacked)
        scale = float(np.abs(expected).max())
        residual_err = float(np.abs(streamed - expected).max()) / (
            scale if scale > 0.0 else 1.0
        )
        result = sim.run(num_steps)
        kinetic = result.records[-1].kinetic_energy
        drift = result.mass_drift()

    nodes_per_cu = nodes_per_compute_unit(mesh.num_nodes, num_cus)
    analytic = max(
        analytic_block_cycles(
            design,
            nodes_per_cu,
            [block.size for block in element_blocks(part, block_size)],
        )
        for part in partition_elements_balanced(mesh.num_elements, num_cus)
    )
    return CosimResult(
        trace=trace,
        analytic_cycles=analytic,
        simulated_cycles=trace.total_cycles,
        kinetic_energy=kinetic,
        mass_drift=drift,
        residual_max_rel_err=residual_err,
        num_compute_units=num_cus,
        block_size=block_size,
        per_cu_cycles=per_cu_simulated_cycles(trace, num_cus),
    )


# ---------------------------------------------------------------------------
# Full RK-step co-simulation: RKL element streams chained into RKU
# ---------------------------------------------------------------------------


def _latency_with_fill(base, fill: float):
    """A task latency with a kernel-launch fill on iteration 0.

    The RKU closed form charges the five update loops' pipeline depths
    (plus SLL crossings) once per launch; the streamed chain pays the
    same constant on its first token. Constant and block-scaled models
    stay :class:`~repro.dataflow.task.BlockLatency` instances so the
    vectorized schedule engine can still evaluate them in bulk.
    """
    extra = max(0, round(fill))
    if extra == 0:
        return base
    if isinstance(base, BlockLatency):
        return BlockLatency(
            base.cycles_per_unit, base.sizes, base.first_extra + extra
        )
    if callable(base):

        def latency(iteration: int, base=base, extra=extra) -> int:
            return int(base(iteration)) + (extra if iteration == 0 else 0)

        return latency
    return BlockLatency(int(base), None, extra)


class _ChainTemplate:
    """One streamed task chain, lowered once and instantiated cheaply.

    The full-step co-simulation runs the *same* chain structure many
    times — one RKL chain per compute unit per RK stage (per step), one
    combination chain per stage — differing only in task names, payload
    actions and sequencing. Lowering the operator pipeline once per
    distinct structure (per-CU block sizes, node block sizes) and
    rebinding per instance removes the per-stage ``to_task_graph`` /
    role-grouping cost from the hot path.
    """

    def __init__(
        self,
        pipeline: OperatorPipeline,
        stage_cycles,
        block_sizes=None,
    ) -> None:
        lowered = pipeline.to_task_graph(
            stage_cycles, name="template", block_sizes=block_sizes
        )
        self.spec = [
            (lowered.tasks[name].kind, lowered.tasks[name].latency)
            for name in lowered.topological_order()
        ]

    def instantiate(
        self,
        task_names,
        actions,
        name: str,
        depends_on: tuple[str, ...] = (),
        fill_cycles: float = 0.0,
    ) -> DataflowGraph:
        """A fresh graph with this chain's structure and latencies."""
        tasks = [
            Task(
                task_names[role],
                (
                    _latency_with_fill(latency, fill_cycles)
                    if index == 0
                    else latency
                ),
                kind=role,
                action=None if actions is None else actions.get(role),
                depends_on=depends_on if index == 0 else (),
            )
            for index, (role, latency) in enumerate(self.spec)
        ]
        graph = DataflowGraph(name=name)
        graph.chain(tasks)
        return graph


def _rku_task_names(prefix: str) -> dict[str, str]:
    """Role -> task-name mapping of one RKU chain instance."""
    return {
        role: f"{prefix}.{base}"
        for role, base in RK_UPDATE_TASK_NAMES.items()
    }


@dataclass
class RKStepCosimResult:
    """Outcome of a co-simulated full RK time step (all stages + RKU).

    One merged dataflow graph — per stage an RKL element stream (one
    chain per compute unit) and a stage-combination node stream, plus
    the final RKU update chain — ran under a single simulator clock,
    sequenced by kernel dependencies
    (:attr:`~repro.dataflow.task.Task.depends_on`).
    """

    trace: SimulationTrace
    #: The streamed step's final conservative state.
    final_state: FlowState
    #: ``(5, N)`` primitive rows ``u, v, w, T, p`` the RKU chain wrote.
    primitives: np.ndarray
    dt: float
    num_stages: int
    #: Max-norm relative error of the streamed final state against the
    #: functional :meth:`repro.solver.simulation.Simulation.step`;
    #: ``None`` when the run skipped the checking solve
    #: (``verify=False``).
    state_max_rel_err: float | None
    #: Per-RK-stage RKL cycles (first LOAD start to last STORE finish,
    #: max over compute units) on the shared clock; for a multi-step run
    #: the stage windows of every step, in step order
    #: (``num_steps * num_stages`` entries).
    per_stage_rkl_cycles: tuple[int, ...]
    #: RKU chain cycles measured on the trace (the last step's final
    #: update).
    rku_simulated_cycles: int
    #: The closed-form :meth:`AcceleratorDesign.rku_step_cycles`.
    rku_analytic_cycles: float
    num_compute_units: int = 1
    block_size: int = 1
    node_block_size: int = 1
    #: Elements of the co-simulated mesh (across all compute units).
    num_elements: int = 0
    #: Time steps chained under the one simulator clock.
    num_steps: int = 1

    @property
    def simulated_cycles(self) -> int:
        """Total cycles of the whole co-simulated step."""
        return self.trace.total_cycles

    @property
    def rku_cycle_agreement(self) -> float:
        """|simulated - analytic| / analytic for the RKU chain."""
        return abs(self.rku_simulated_cycles - self.rku_analytic_cycles) / (
            self.rku_analytic_cycles
        )


def _chain_window_cycles(
    trace: SimulationTrace, load_names: list[str], store_names: list[str]
) -> int:
    """Cycles one task chain occupied: first LOAD start to last STORE
    finish, on the shared simulator clock."""
    first = min(trace.stats(name).first_start or 0 for name in load_names)
    last = max(trace.stats(name).last_finish or 0 for name in store_names)
    return last - first


def cosimulate_rk_stage(
    design: AcceleratorDesign,
    mesh: HexMesh,
    dt: float | None = None,
    backend: str | None = None,
    case=None,
    initial_state: FlowState | None = None,
    block_size: int = 1,
    num_cus: int = 1,
    partitions=None,
    node_block_size: int = 32,
    tableau: ButcherTableau = RK4,
    num_steps: int = 1,
    engine: str = "auto",
    num_workers: int | None = None,
    dtype: str | None = None,
    verify: bool = True,
) -> RKStepCosimResult:
    """Co-simulate one complete RK time step: RKL streamed into RKU.

    Every RK stage's element stream (the RKL pipeline, sharded over
    ``num_cus`` like :func:`streamed_residual`) and every stage
    combination's node stream (the
    :func:`~repro.pipeline.rk_update.rk_update_pipeline` lowering) run
    as task chains of ONE merged dataflow graph under ONE simulator
    clock, sequenced the way the host runtime sequences the kernels:
    each chain's entry task carries a
    :attr:`~repro.dataflow.task.Task.depends_on` dependency on the
    previous chain's drain (stage ``s`` RKL waits for combination ``s``,
    combination ``s + 1`` waits for every stage-``s`` RKL shard, and the
    final RKU chain — axpy with the ``b`` row plus the primitive update
    — waits for the last stage). The payload-carrying tokens compute the
    *actual* step: the result must match the functional
    :meth:`repro.solver.simulation.Simulation.step` to rounding error,
    and the RKU chain's trace cycles must agree with the
    :meth:`~repro.accel.designs.AcceleratorDesign.rku_step_cycles`
    closed form — both asserted by the test suite.

    Parameters
    ----------
    design:
        Accelerator design point pricing both pipelines.
    mesh:
        The (small) mesh whose step is co-simulated.
    dt:
        Step size (``None`` uses the CFL controller's stable step).
    backend / case / initial_state:
        As in :func:`cosimulate_small_mesh`.
    block_size:
        Elements per RKL token.
    num_cus / partitions:
        RKL sharding, as in :func:`streamed_residual`.
    node_block_size:
        Nodes per RKU token. The default keeps per-token simulation
        overhead low while the RKU cycle count stays within a few
        percent of the closed form.
    tableau:
        The RK scheme to step.
    num_steps:
        Time steps to chain under the one simulator clock: each step's
        first RKL streams are sequenced behind the previous step's RKU
        store, so multi-step runs expose the steady-state behaviour of
        the whole method (all steps use the first step's ``dt``).
    engine:
        Simulation engine
        (:meth:`~repro.dataflow.simulator.DataflowSimulator.run`);
        ``"auto"`` resolves to the vectorized schedule engine.
    dtype:
        Precision mode (``"float64"``, ``"float32"``, ``"mixed"``;
        ``None`` defers to ``REPRO_DTYPE``): the streamed step's staging
        arrays run in the policy's storage dtype and its accumulators in
        the accumulation dtype, matching the functional
        :meth:`~repro.solver.simulation.Simulation.step` under the same
        policy.
    verify:
        ``True`` (default) re-runs the step(s) through the functional
        :meth:`~repro.solver.simulation.Simulation.step` and records the
        max-norm state error. ``False`` skips that duplicate solve —
        the streamed state is bitwise what the verified run streams, so
        skipping the check only drops the ``state_max_rel_err`` report
        (left ``None``). The DSE cosim tier runs with ``verify=False``;
        the parity suite audits the checked path.

    Returns
    -------
    RKStepCosimResult
        Functional + timing outcome of the streamed step(s).

    Raises
    ------
    ExperimentError
        On invalid ``block_size``/``num_cus``/``partitions``, as in
        :func:`streamed_residual`, or ``num_steps < 1``.
    """
    from ..physics.taylor_green import DEFAULT_TGV
    from ..solver.simulation import Simulation

    if case is None:
        case = DEFAULT_TGV
    if block_size < 1:
        raise ExperimentError("block_size must be >= 1")
    if node_block_size < 1:
        raise ExperimentError("node_block_size must be >= 1")
    if num_steps < 1:
        raise ExperimentError("num_steps must be >= 1")
    sim = Simulation(
        mesh, case, tableau=tableau, backend=backend,
        initial_state=initial_state, num_workers=num_workers, dtype=dtype,
    )
    operator = sim.operator
    precision = operator.precision
    storage = precision.storage
    acc_dtype = precision.accumulate_for(storage)
    y0 = sim.state.as_stacked().astype(storage, copy=False)
    if dt is None:
        dt = sim.compute_dt()
    num_nodes = mesh.num_nodes
    num_stages = tableau.num_stages
    partitions = _element_partitions(mesh.num_elements, num_cus, partitions)
    num_cus = len(partitions)
    nodes_per_cu = nodes_per_compute_unit(num_nodes, num_cus)
    blocks = node_blocks(num_nodes, node_block_size)
    node_sizes = [block.size for block in blocks]

    ctx = PipelineContext.from_operator(operator)
    rku_ctx = RKUpdateContext(
        gas=operator.gas, num_nodes=num_nodes, precision=precision
    )
    rkl_pipeline = element_pipeline()
    combine_pipeline = rk_update_pipeline(primitives=False)
    update_pipeline = rk_update_pipeline(primitives=True)
    rku_fill = design.rku_fill_cycles()

    # The streaming lowerings, built ONCE: the task-chain structure and
    # latencies are identical across RK stages (and steps) — only names,
    # actions and sequencing differ per instance.
    rkl_stage_cycles = design.pipeline_stage_cycles(rkl_pipeline, nodes_per_cu)
    element_tokens = [element_blocks(part, block_size) for part in partitions]
    rkl_templates = [
        _ChainTemplate(
            rkl_pipeline,
            rkl_stage_cycles,
            block_sizes=(
                None
                if block_size == 1
                else [block.size for block in tokens]
            ),
        )
        for tokens in element_tokens
    ]
    combine_template = _ChainTemplate(
        combine_pipeline,
        design.rku_pipeline_stage_cycles(combine_pipeline, num_nodes),
        block_sizes=node_sizes,
    )
    update_template = _ChainTemplate(
        update_pipeline,
        design.rku_pipeline_stage_cycles(update_pipeline, num_nodes),
        block_sizes=node_sizes,
    )

    subgraphs: list[DataflowGraph] = []
    iterations: dict[str, int] = {}
    previous_drain: tuple[str, ...] = ()
    out_state = y0
    out_primitives = np.empty((NUM_CONSERVED, num_nodes))
    shape = (NUM_CONSERVED, num_nodes)
    for step in range(num_steps):
        prefix = "" if num_steps == 1 else f"k{step}."
        # Whole-mesh staging arrays this step's chains hand to one
        # another: the finalized stage derivatives, the combined stage
        # states the RKL streams read, and the step's outputs. The
        # previous step's output state is this step's base state.
        y_step = out_state
        derivs = [np.zeros(shape, dtype=storage) for _ in range(num_stages)]
        stage_states: list[np.ndarray] = [y_step]
        stage_states += [
            np.empty(shape, dtype=storage) for _ in range(num_stages - 1)
        ]
        accumulators = [
            [np.zeros(shape, dtype=acc_dtype) for _ in partitions]
            for _ in range(num_stages)
        ]
        out_state = np.empty(shape, dtype=storage)
        out_primitives = np.empty(shape, dtype=storage)

        def finalizer(stage: int, accumulators=accumulators, derivs=derivs):
            """Finalize stage ``stage``'s derivative when its consumer
            launches: reduce the per-CU partials, invert the mass, apply
            wall conditions — at the simulated instant the next kernel
            starts, after the dependency guaranteed the RKL drain."""

            def prepare() -> None:
                total = accumulators[stage][0]
                for accumulator in accumulators[stage][1:]:
                    total = total + accumulator
                if total.dtype != storage:
                    total = total.astype(storage)
                derivs[stage][:] = operator.finalize_residual(total)

            return prepare

        for stage in range(num_stages):
            if stage > 0:
                # Stage-combination node stream:
                # y_s = y + dt * sum(a_sk d_k).
                names = _rku_task_names(f"{prefix}s{stage}.update")
                actions = rk_update_streaming_actions(
                    combine_pipeline,
                    rku_ctx,
                    y_step,
                    derivs[:stage],
                    tableau.a[stage, :stage],
                    dt,
                    out_state=stage_states[stage],
                    blocks=blocks,
                    prepare=finalizer(stage - 1),
                )
                graph = combine_template.instantiate(
                    names,
                    actions,
                    name=f"rkstep-{design.options.name}-{prefix}s{stage}-update",
                    depends_on=previous_drain,
                    fill_cycles=rku_fill,
                )
                for task_name in graph.tasks:
                    iterations[task_name] = len(blocks)
                subgraphs.append(graph)
                previous_drain = (names["store"],)
            # RKL element streams of this stage, one chain per CU.
            drains: list[str] = []
            for cu in range(num_cus):
                names = {
                    role: f"{prefix}s{stage}.cu{cu}.{base}"
                    for role, base in DEFAULT_TASK_NAMES.items()
                }
                actions = streaming_actions(
                    rkl_pipeline,
                    ctx,
                    stage_states[stage],
                    accumulators[stage][cu],
                    blocks=element_tokens[cu],
                )
                graph = rkl_templates[cu].instantiate(
                    names,
                    actions,
                    name=f"rkstep-{design.options.name}-{prefix}s{stage}-cu{cu}",
                    depends_on=previous_drain,
                )
                for task_name in graph.tasks:
                    iterations[task_name] = len(element_tokens[cu])
                drains.append(names["store"])
                subgraphs.append(graph)
            previous_drain = tuple(drains)
        # The step's final RKU chain: b-row combination + primitive
        # update.
        names = _rku_task_names(f"{prefix}rku")
        actions = rk_update_streaming_actions(
            update_pipeline,
            rku_ctx,
            y_step,
            derivs,
            tableau.b,
            dt,
            out_state=out_state,
            out_primitives=out_primitives,
            blocks=blocks,
            prepare=finalizer(num_stages - 1),
        )
        graph = update_template.instantiate(
            names,
            actions,
            name=f"rkstep-{design.options.name}-{prefix}rku",
            depends_on=previous_drain,
            fill_cycles=rku_fill,
        )
        for task_name in graph.tasks:
            iterations[task_name] = len(blocks)
        subgraphs.append(graph)
        previous_drain = (names["store"],)

    merged = merge_graphs(
        f"rkstep-{design.options.name}-{num_cus}cu", subgraphs
    )
    trace = DataflowSimulator(merged).run(iterations, engine=engine)

    state_err = None
    if verify:
        # Functional reference: the very steps the solver would take.
        for _ in range(num_steps):
            sim.step(dt)
        expected = sim.state.as_stacked()
        scale = float(np.abs(expected).max())
        state_err = float(np.abs(out_state - expected).max()) / (
            scale if scale > 0.0 else 1.0
        )

    per_stage = tuple(
        _chain_window_cycles(
            trace,
            [
                f"{prefix}s{stage}.cu{cu}.{DEFAULT_TASK_NAMES['load']}"
                for cu in range(num_cus)
            ],
            [
                f"{prefix}s{stage}.cu{cu}.{DEFAULT_TASK_NAMES['store']}"
                for cu in range(num_cus)
            ],
        )
        for prefix in (
            [""] if num_steps == 1 else [f"k{k}." for k in range(num_steps)]
        )
        for stage in range(num_stages)
    )
    last_prefix = "" if num_steps == 1 else f"k{num_steps - 1}."
    rku_cycles = _chain_window_cycles(
        trace,
        [f"{last_prefix}rku.{RK_UPDATE_TASK_NAMES['load']}"],
        [f"{last_prefix}rku.{RK_UPDATE_TASK_NAMES['store']}"],
    )
    return RKStepCosimResult(
        trace=trace,
        final_state=FlowState.from_stacked(out_state),
        primitives=out_primitives,
        dt=dt,
        num_stages=num_stages,
        state_max_rel_err=state_err,
        per_stage_rkl_cycles=per_stage,
        rku_simulated_cycles=rku_cycles,
        rku_analytic_cycles=design.rku_step_cycles(num_nodes),
        num_compute_units=num_cus,
        block_size=block_size,
        node_block_size=node_block_size,
        num_elements=mesh.num_elements,
        num_steps=num_steps,
    )


def design_timing_from_rk_cosim(
    design: AcceleratorDesign, result: RKStepCosimResult
) -> DesignTiming:
    """A :class:`DesignTiming` whose stage times are *simulated*.

    Both terms of the step come from the full-step trace instead of the
    closed forms: ``rkl_seconds_per_stage`` is the mean per-stage RKL
    window (over every stage of every chained step) and
    ``rku_seconds_per_step`` the RKU chain's window, each converted at
    the design clock — the trace-derived counterpart of
    :func:`design_timing`, directly comparable against it.
    """
    hz = design.clock_mhz * 1e6
    mean_stage = sum(result.per_stage_rkl_cycles) / len(
        result.per_stage_rkl_cycles
    )
    return DesignTiming(
        design_name=design.options.name,
        num_nodes=result.final_state.num_nodes,
        num_elements=result.num_elements,
        clock_mhz=design.clock_mhz,
        rkl_seconds_per_stage=seconds_from_cycles(mean_stage, hz),
        rku_seconds_per_step=seconds_from_cycles(
            result.rku_simulated_cycles, hz
        ),
        num_stages=result.num_stages,
    )
