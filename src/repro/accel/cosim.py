"""Timing evaluation and functional co-simulation of a design.

Two granularities:

- **analytic** (:func:`rk_step_seconds` and friends): steady-state
  extrapolation used at paper-scale mesh sizes — verified against the
  cycle-level dataflow simulation by the test suite;
- **cycle-level** (:func:`cosimulate_small_mesh`): builds the element
  pipeline as a :class:`~repro.dataflow.graph.DataflowGraph`, runs the
  cycle simulator for every element of a real (small) mesh, and runs the
  functional numpy solver on the same mesh — demonstrating that the
  accelerator computes the *same physics* the timing model prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import seconds_from_cycles
from ..dataflow.graph import DataflowGraph
from ..dataflow.simulator import DataflowSimulator, SimulationTrace
from ..dataflow.task import Task
from ..errors import ExperimentError
from ..mesh.hexmesh import HexMesh
from ..timeint.butcher import RK4, ButcherTableau
from .designs import AcceleratorDesign


@dataclass(frozen=True)
class DesignTiming:
    """Seconds per time step of one design on one mesh size."""

    design_name: str
    num_nodes: int
    num_elements: int
    clock_mhz: float
    rkl_seconds_per_stage: float
    rku_seconds_per_step: float
    num_stages: int

    @property
    def rk_step_seconds(self) -> float:
        """RKL (all stages) + RKU for one time step."""
        return self.rkl_seconds_per_stage * self.num_stages + (
            self.rku_seconds_per_step
        )


def _elements_for_nodes(num_nodes: int, polynomial_order: int = 2) -> int:
    """Periodic TGV mesh: each element contributes p**3 unique nodes."""
    return max(1, round(num_nodes / polynomial_order**3))


def design_timing(
    design: AcceleratorDesign,
    num_nodes: int,
    num_elements: int | None = None,
    tableau: ButcherTableau = RK4,
) -> DesignTiming:
    """Analytic timing of one design at one mesh size."""
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    if num_elements is None:
        num_elements = _elements_for_nodes(num_nodes, design.rkl.polynomial_order)
    hz = design.clock_mhz * 1e6
    rkl_cycles = design.rkl_stage_cycles(num_nodes, num_elements)
    rku_cycles = design.rku_step_cycles(num_nodes)
    return DesignTiming(
        design_name=design.options.name,
        num_nodes=num_nodes,
        num_elements=num_elements,
        clock_mhz=design.clock_mhz,
        rkl_seconds_per_stage=seconds_from_cycles(rkl_cycles, hz),
        rku_seconds_per_step=seconds_from_cycles(rku_cycles, hz),
        num_stages=tableau.num_stages,
    )


def rk_step_seconds(
    design: AcceleratorDesign, num_nodes: int, tableau: ButcherTableau = RK4
) -> float:
    """Seconds for one RK time step (RKL x stages + RKU)."""
    return design_timing(design, num_nodes, tableau=tableau).rk_step_seconds


def rk_method_seconds(
    design: AcceleratorDesign,
    num_nodes: int,
    num_steps: int,
    tableau: ButcherTableau = RK4,
) -> float:
    """Seconds for the RK method over a whole run (Fig. 5's metric)."""
    if num_steps < 1:
        raise ExperimentError("num_steps must be >= 1")
    return rk_step_seconds(design, num_nodes, tableau) * num_steps


def end_to_end_step_seconds(
    design: AcceleratorDesign,
    num_nodes: int,
    host_non_rk_seconds: float,
    pcie_seconds: float = 0.0,
    tableau: ButcherTableau = RK4,
) -> float:
    """End-to-end step: host non-RK work + accelerator RK + PCIe sync.

    This is the Section IV-B comparison: the host retains the non-RK
    phases ("The remaining computations are handled by the host CPU")
    while the accelerator executes the RK method.
    """
    if host_non_rk_seconds < 0 or pcie_seconds < 0:
        raise ExperimentError("times must be >= 0")
    return (
        host_non_rk_seconds
        + rk_step_seconds(design, num_nodes, tableau)
        + pcie_seconds
    )


# ---------------------------------------------------------------------------
# Cycle-level co-simulation
# ---------------------------------------------------------------------------


def build_rkl_dataflow_graph(
    design: AcceleratorDesign, num_nodes: int
) -> DataflowGraph:
    """The element pipeline as an explicit dataflow graph.

    Task latencies come from the same models as the analytic path, so a
    cycle-level run must agree with ``fill + II * (E - 1)`` — asserted by
    the integration tests.
    """
    cycles = design.rkl_element_cycles(num_nodes)
    graph = DataflowGraph(name=f"rkl-{design.options.name}")
    graph.chain(
        [
            Task(
                "load_element",
                max(1, round(cycles["load"])),
                kind="load",
            ),
            Task(
                "compute_diffusion_convection",
                max(1, round(cycles["compute"])),
                kind="compute",
            ),
            Task(
                "store_element_contribution",
                max(1, round(cycles["store"])),
                kind="store",
            ),
        ]
    )
    return graph


@dataclass
class CosimResult:
    """Functional + timing co-simulation outcome on a small mesh."""

    trace: SimulationTrace
    analytic_cycles: float
    simulated_cycles: int
    kinetic_energy: float
    mass_drift: float

    @property
    def cycle_agreement(self) -> float:
        """|simulated - analytic| / analytic."""
        return abs(self.simulated_cycles - self.analytic_cycles) / (
            self.analytic_cycles
        )


def cosimulate_small_mesh(
    design: AcceleratorDesign,
    mesh: HexMesh,
    num_steps: int = 2,
    backend: str | None = None,
) -> CosimResult:
    """Run functional solve + cycle-level pipeline on one small mesh.

    The functional result (from :class:`repro.solver.Simulation`) proves
    the workload is real physics; the cycle-level trace validates the
    analytic extrapolation the experiments rely on. ``backend`` selects
    the compute backend of the functional solver (``None`` defers to the
    ``REPRO_BACKEND`` environment variable, then ``"reference"``).
    """
    from ..physics.taylor_green import DEFAULT_TGV
    from ..solver.simulation import Simulation

    sim = Simulation(mesh, DEFAULT_TGV, backend=backend)
    result = sim.run(num_steps)

    graph = build_rkl_dataflow_graph(design, mesh.num_nodes)
    trace = DataflowSimulator(graph).run(mesh.num_elements)
    if design.options.element_dataflow:
        analytic = design.rkl_fill_cycles(mesh.num_nodes) + (
            design.rkl_element_ii(mesh.num_nodes) * (mesh.num_elements - 1)
        )
    else:
        analytic = design.rkl_element_ii(mesh.num_nodes) * mesh.num_elements
    return CosimResult(
        trace=trace,
        analytic_cycles=analytic,
        simulated_cycles=trace.total_cycles,
        kinetic_energy=result.records[-1].kinetic_energy,
        mass_drift=result.mass_drift(),
    )
