"""Timing evaluation and functional co-simulation of a design.

Two granularities:

- **analytic** (:func:`rk_step_seconds` and friends): steady-state
  extrapolation used at paper-scale mesh sizes — verified against the
  cycle-level dataflow simulation by the test suite;
- **cycle-level** (:func:`cosimulate_small_mesh`): lowers the operator
  pipeline IR (:func:`repro.pipeline.element_pipeline`) to a
  :class:`~repro.dataflow.graph.DataflowGraph` whose tasks carry
  payload actions, then streams every element of a real (small) mesh
  through it — the run prices the pipeline *and* computes it. The
  streamed residual must reproduce
  :meth:`~repro.solver.navier_stokes.NavierStokesOperator.residual` to
  rounding error while the cycle count still matches the analytic
  ``fill + II * (E - 1)`` model: the accelerator computes the *same
  physics* the timing model prices, by construction from one IR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import seconds_from_cycles
from ..dataflow.graph import DataflowGraph
from ..dataflow.simulator import DataflowSimulator, SimulationTrace
from ..errors import ExperimentError
from ..mesh.hexmesh import HexMesh, elements_for_node_count
from ..physics.state import NUM_CONSERVED, FlowState
from ..pipeline import (
    DEFAULT_TASK_NAMES,
    OperatorPipeline,
    PipelineContext,
    element_pipeline,
    streaming_actions,
)
from ..timeint.butcher import RK4, ButcherTableau
from .designs import AcceleratorDesign


@dataclass(frozen=True)
class DesignTiming:
    """Seconds per time step of one design on one mesh size."""

    design_name: str
    num_nodes: int
    num_elements: int
    clock_mhz: float
    rkl_seconds_per_stage: float
    rku_seconds_per_step: float
    num_stages: int

    @property
    def rk_step_seconds(self) -> float:
        """RKL (all stages) + RKU for one time step."""
        return self.rkl_seconds_per_stage * self.num_stages + (
            self.rku_seconds_per_step
        )


def design_timing(
    design: AcceleratorDesign,
    num_nodes: int,
    num_elements: int | None = None,
    tableau: ButcherTableau = RK4,
) -> DesignTiming:
    """Analytic timing of one design at one mesh size."""
    if num_nodes < 1:
        raise ExperimentError("num_nodes must be >= 1")
    if num_elements is None:
        num_elements = elements_for_node_count(
            num_nodes, design.rkl.polynomial_order
        )
    hz = design.clock_mhz * 1e6
    rkl_cycles = design.rkl_stage_cycles(num_nodes, num_elements)
    rku_cycles = design.rku_step_cycles(num_nodes)
    return DesignTiming(
        design_name=design.options.name,
        num_nodes=num_nodes,
        num_elements=num_elements,
        clock_mhz=design.clock_mhz,
        rkl_seconds_per_stage=seconds_from_cycles(rkl_cycles, hz),
        rku_seconds_per_step=seconds_from_cycles(rku_cycles, hz),
        num_stages=tableau.num_stages,
    )


def rk_step_seconds(
    design: AcceleratorDesign, num_nodes: int, tableau: ButcherTableau = RK4
) -> float:
    """Seconds for one RK time step (RKL x stages + RKU)."""
    return design_timing(design, num_nodes, tableau=tableau).rk_step_seconds


def rk_method_seconds(
    design: AcceleratorDesign,
    num_nodes: int,
    num_steps: int,
    tableau: ButcherTableau = RK4,
) -> float:
    """Seconds for the RK method over a whole run (Fig. 5's metric)."""
    if num_steps < 1:
        raise ExperimentError("num_steps must be >= 1")
    return rk_step_seconds(design, num_nodes, tableau) * num_steps


def end_to_end_step_seconds(
    design: AcceleratorDesign,
    num_nodes: int,
    host_non_rk_seconds: float,
    pcie_seconds: float = 0.0,
    tableau: ButcherTableau = RK4,
) -> float:
    """End-to-end step: host non-RK work + accelerator RK + PCIe sync.

    This is the Section IV-B comparison: the host retains the non-RK
    phases ("The remaining computations are handled by the host CPU")
    while the accelerator executes the RK method.
    """
    if host_non_rk_seconds < 0 or pcie_seconds < 0:
        raise ExperimentError("times must be >= 0")
    return (
        host_non_rk_seconds
        + rk_step_seconds(design, num_nodes, tableau)
        + pcie_seconds
    )


# ---------------------------------------------------------------------------
# Cycle-level co-simulation
# ---------------------------------------------------------------------------


def build_rkl_dataflow_graph(
    design: AcceleratorDesign,
    num_nodes: int,
    pipeline: OperatorPipeline | None = None,
    actions=None,
) -> DataflowGraph:
    """The element pipeline as an explicit dataflow graph.

    The graph structure is *lowered from the operator pipeline IR* (the
    fused pipeline — the hardware always runs the merged
    diffusion+convection COMPUTE module), with per-stage latencies from
    :meth:`AcceleratorDesign.pipeline_stage_cycles`. Group sums equal
    the analytic role latencies, so a cycle-level run must agree with
    ``fill + II * (E - 1)`` — asserted by the integration tests.
    ``actions`` optionally attaches per-role payload execution (see
    :func:`repro.pipeline.streaming_actions`) to co-simulate
    functionally.
    """
    if pipeline is None:
        pipeline = element_pipeline()
    stage_cycles = design.pipeline_stage_cycles(pipeline, num_nodes)
    return pipeline.to_task_graph(
        stage_cycles,
        task_names=DEFAULT_TASK_NAMES,
        actions=actions,
        name=f"rkl-{design.options.name}",
    )


def streamed_residual(
    design: AcceleratorDesign,
    operator,
    stacked: np.ndarray,
    pipeline: OperatorPipeline | None = None,
) -> tuple[np.ndarray, SimulationTrace]:
    """One right-hand side evaluated *through* the cycle simulator.

    Streams every mesh element through the lowered element pipeline —
    each simulated LOAD gathers a real element, COMPUTE runs the fused
    flux/divergence kernels on it, STORE assembles its contribution —
    then applies the operator's mass inversion and wall conditions.
    Returns the residual and the simulation trace (one run yields both
    the functional result and the cycle count).
    """
    if pipeline is None:
        pipeline = element_pipeline()
    ctx = PipelineContext.from_operator(operator)
    accumulator = np.zeros((NUM_CONSERVED, operator.mesh.num_nodes))
    actions = streaming_actions(pipeline, ctx, stacked, accumulator)
    graph = build_rkl_dataflow_graph(
        design, operator.mesh.num_nodes, pipeline=pipeline, actions=actions
    )
    trace = DataflowSimulator(graph).run(operator.mesh.num_elements)
    return operator.finalize_residual(accumulator), trace


@dataclass
class CosimResult:
    """Functional + timing co-simulation outcome on a small mesh."""

    trace: SimulationTrace
    analytic_cycles: float
    simulated_cycles: int
    kinetic_energy: float
    mass_drift: float
    #: Max-norm relative error of the streamed residual against the
    #: functional operator's, over all five conserved fields.
    residual_max_rel_err: float

    @property
    def cycle_agreement(self) -> float:
        """|simulated - analytic| / analytic."""
        return abs(self.simulated_cycles - self.analytic_cycles) / (
            self.analytic_cycles
        )


def cosimulate_small_mesh(
    design: AcceleratorDesign,
    mesh: HexMesh,
    num_steps: int = 2,
    backend: str | None = None,
    case=None,
    initial_state: FlowState | None = None,
) -> CosimResult:
    """Run functional solve + payload-carrying cycle simulation on one mesh.

    The functional result (from :class:`repro.solver.Simulation`) proves
    the workload is real physics; the cycle-level trace validates the
    analytic extrapolation the experiments rely on; and the streamed
    residual (:func:`streamed_residual`, computed on the initial state)
    proves both executions agree to rounding error. ``backend`` selects
    the compute backend for both paths (``None`` defers to the
    ``REPRO_BACKEND`` environment variable, then ``"reference"``);
    ``case`` and ``initial_state`` select the physics (defaults: the TGV
    case on its standard initial condition), so wall-bounded workloads
    such as the channel shear flow co-simulate too.
    """
    from ..physics.taylor_green import DEFAULT_TGV
    from ..solver.simulation import Simulation

    if case is None:
        case = DEFAULT_TGV
    sim = Simulation(mesh, case, backend=backend, initial_state=initial_state)
    initial_stacked = sim.state.as_stacked()
    expected = sim.operator.residual(initial_stacked)
    streamed, trace = streamed_residual(design, sim.operator, initial_stacked)
    scale = float(np.abs(expected).max())
    residual_err = float(np.abs(streamed - expected).max()) / (
        scale if scale > 0.0 else 1.0
    )

    result = sim.run(num_steps)

    if design.options.element_dataflow:
        analytic = design.rkl_fill_cycles(mesh.num_nodes) + (
            design.rkl_element_ii(mesh.num_nodes) * (mesh.num_elements - 1)
        )
    else:
        analytic = design.rkl_element_ii(mesh.num_nodes) * mesh.num_elements
    return CosimResult(
        trace=trace,
        analytic_cycles=analytic,
        simulated_cycles=trace.total_cycles,
        kinetic_energy=result.records[-1].kinetic_energy,
        mass_drift=result.mass_drift(),
        residual_max_rel_err=residual_err,
    )
