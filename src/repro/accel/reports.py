"""Design report rendering: Table I rows, timing tables, power splits."""

from __future__ import annotations

from ..fpga.device import ALVEO_U200, FPGADevice
from .cosim import design_timing
from .designs import AcceleratorDesign

#: Column order of the paper's Table I.
TABLE1_COLUMNS = ("FF", "LUT", "BRAM", "URAM", "DSP")


def table1_row(
    design: AcceleratorDesign, device: FPGADevice = ALVEO_U200
) -> dict[str, float]:
    """One Table I row: post-P&R utilization percentages."""
    util = design.utilization(device)
    return {col: util[col] for col in TABLE1_COLUMNS}


def render_table1(
    designs: list[AcceleratorDesign], device: FPGADevice = ALVEO_U200
) -> str:
    """The paper's Table I for a list of designs."""
    header = f"{'Design':<28}" + "".join(f"{c + '%':>9}" for c in TABLE1_COLUMNS)
    lines = [header, "-" * len(header)]
    for design in designs:
        row = table1_row(design, device)
        label = f"{design.options.name}@{design.clock_mhz:.0f}MHz"
        lines.append(
            f"{label:<28}" + "".join(f"{row[c]:>9.2f}" for c in TABLE1_COLUMNS)
        )
    return "\n".join(lines)


def render_timing_table(
    designs: list[AcceleratorDesign],
    node_counts: list[int],
    num_steps: int = 1,
) -> str:
    """RK-method execution times per design and mesh size (Fig. 5 data)."""
    header = f"{'nodes':>12}" + "".join(
        f"{d.options.name:>20}" for d in designs
    )
    lines = [header, "-" * len(header)]
    for n in node_counts:
        cells = []
        for design in designs:
            secs = design_timing(design, n).rk_step_seconds * num_steps
            cells.append(f"{secs:>19.4f}s")
        lines.append(f"{n:>12}" + "".join(cells))
    return "\n".join(lines)


def render_power_report(design: AcceleratorDesign) -> str:
    """Power split of one design (Section IV-B style)."""
    report = design.power_report()
    return "\n".join(
        [
            f"power report: {design.options.name} @ {design.clock_mhz:.0f} MHz",
            f"  core application : {report.core_w:8.2f} W",
            f"  peripherals      : {report.peripherals_w:8.2f} W",
            f"  rest of system   : {report.rest_w:8.2f} W",
            f"  total            : {report.total_w:8.2f} W",
        ]
    )
