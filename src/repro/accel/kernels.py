"""RKL and RKU kernel models (paper Fig. 3).

The **RKL** (Runge-Kutta Loop) kernel streams elements through the
Load-Compute-Store pipeline; its COMPUTE stage merges the Diffusion and
Convection terms ("we code-merged these similar operations into a single
function/module to enhance hardware reuse") and internally pipelines the
node-level stages 2a (load node), 2b (gradients, tau, residuals) and
2c (store node contribution).

The **RKU** (Runge-Kutta Update) kernel re-evaluates ``rho, u, T, E, p``
with five streaming update loops of the ``x[i] <- f(x[i], y[i])`` form
whose II hinges on the decoupled load/store interface optimization.

Everything here derives from the *same* per-node operation counts as the
CPU workload model (:mod:`repro.solver.workload`), so the two platforms
price identical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HLSError
from ..hls.arrays import ArraySpec, MemoryKind
from ..hls.loops import ArrayAccess, LoopNest
from ..fpga.axi import MemoryPort
from ..solver.workload import (
    NUM_FIELDS,
    NUM_GRADIENT_FIELDS,
    NUM_VISCOUS_FIELDS,
    METRIC_VALUES_PER_ELEMENT_CONST,
    euler_flux_per_node,
    gradient_per_node_per_field,
    primitives_per_node,
    rku_update_per_node,
    tau_per_node,
    viscous_flux_per_node,
    weak_divergence_per_node_per_field,
)

#: Residual fields accumulated per node (5 convection + 4 diffusion).
RESIDUAL_FIELD_OPS = NUM_FIELDS + NUM_VISCOUS_FIELDS


# ---------------------------------------------------------------------------
# RKL kernel
# ---------------------------------------------------------------------------


@dataclass
class RKLKernelModel:
    """Structural model of the RKL kernel for one polynomial order."""

    polynomial_order: int
    nodes_per_element: int
    node_loops: dict[str, LoopNest]
    onchip_arrays: dict[str, ArraySpec]
    load_ports: list[MemoryPort]
    store_ports: list[MemoryPort]
    batch_elements: int

    @property
    def n1(self) -> int:
        return self.polynomial_order + 1


#: Per-field element buffer names (separate arrays, as in the paper's
#: Fig. 4 code with its distinct rho/Tem/mu_fluid/E arrays). Keeping the
#: fields in separate small arrays is what lets Vitis's automatic
#: complete-partitioning threshold apply to the baseline.
STATE_BUFFER_NAMES = (
    "elem_rho",
    "elem_mom_x",
    "elem_mom_y",
    "elem_mom_z",
    "elem_energy",
)
RESIDUAL_BUFFER_NAMES = (
    "res_rho_buf",
    "res_mom_x_buf",
    "res_mom_y_buf",
    "res_mom_z_buf",
    "res_energy_buf",
)

#: Gradient neighbour reads of the 2b stage per state buffer: the u, v, w
#: gradients read the momentum buffers, the T gradient reads energy, and
#: the primitive conversion touches rho.
_STATE_READS_2B = {
    "elem_rho": 2.0,
    "elem_mom_x": 10.0,
    "elem_mom_y": 10.0,
    "elem_mom_z": 10.0,
    "elem_energy": 9.0,
}


def _node_loop_2a(q: int) -> LoopNest:
    """2a — LOAD Node: fetch the node's state and metric from the PL."""
    accesses = [
        ArrayAccess(name, reads_per_iter=1.0) for name in STATE_BUFFER_NAMES
    ]
    accesses.append(ArrayAccess("elem_metric", reads_per_iter=10.0))
    return LoopNest(
        name="node_load",
        trip_count=q,
        ops_per_iter={"int": 4.0, "mem": float(NUM_FIELDS + 10)},
        accesses=accesses,
    )


def _node_loop_2b(q: int, n1: int) -> LoopNest:
    """2b — COMPUTE Gradients, tau, and Residuals (merged diff+conv)."""
    prim = primitives_per_node()
    grad = gradient_per_node_per_field(n1).scaled(NUM_GRADIENT_FIELDS)
    tau = tau_per_node()
    visc = viscous_flux_per_node()
    euler = euler_flux_per_node()
    wdiv = weak_divergence_per_node_per_field(n1).scaled(RESIDUAL_FIELD_OPS)
    total = prim + grad + tau + visc + euler + wdiv
    accesses = [
        ArrayAccess(name, reads_per_iter=_STATE_READS_2B[name])
        for name in STATE_BUFFER_NAMES
    ]
    accesses.append(ArrayAccess("elem_metric", reads_per_iter=10.0))
    accesses.append(
        ArrayAccess(
            "node_partials",
            reads_per_iter=float(RESIDUAL_FIELD_OPS),
            writes_per_iter=float(RESIDUAL_FIELD_OPS),
        )
    )
    return LoopNest(
        name="node_compute",
        trip_count=q,
        ops_per_iter={
            "fadd": total.adds,
            "fmul": total.muls,
            "fdiv": total.divs,
            "int": 8.0,
        },
        accesses=accesses,
    )


def _node_loop_2c(q: int) -> LoopNest:
    """2c — STORE Node Contribution: write the node's residuals.

    The restructured code composes each node's five residuals from the
    staged partials and *writes* them (no read-modify-write) — removing
    the accumulation recurrence the baseline's fused loop carries.
    """
    accesses = [
        ArrayAccess(name, writes_per_iter=1.0)
        for name in RESIDUAL_BUFFER_NAMES
    ]
    accesses.append(
        ArrayAccess("node_partials", reads_per_iter=float(RESIDUAL_FIELD_OPS))
    )
    return LoopNest(
        name="node_store",
        trip_count=q,
        ops_per_iter={
            "fadd": float(RESIDUAL_FIELD_OPS),
            "int": 3.0,
            "mem": float(2 * NUM_FIELDS),
        },
        accesses=accesses,
    )


def _rkl_onchip_arrays(q: int, batch_elements: int) -> dict[str, ArraySpec]:
    """On-chip arrays of the RKL kernel.

    Per-field ``elem_*`` / ``res_*`` buffers hold the element in flight;
    ``stage_*`` are the double-buffered *batch* staging stores the LOAD
    task fills from DDR — the "larger matrices that surpass BRAM capacity
    are stored in the 288KB URAMs" of Section III-D. The connectivity
    staging table stays in BRAM (index-width data, constantly re-read).
    """
    arrays: dict[str, ArraySpec] = {}
    for name in STATE_BUFFER_NAMES:
        arrays[name] = ArraySpec(name=name, words=q, kind=MemoryKind.BRAM)
    for name in RESIDUAL_BUFFER_NAMES:
        arrays[name] = ArraySpec(name=name, words=q, kind=MemoryKind.BRAM)
    arrays["elem_metric"] = ArraySpec(
        name="elem_metric", words=q + 9, kind=MemoryKind.BRAM
    )
    arrays["node_partials"] = ArraySpec(
        name="node_partials", words=RESIDUAL_FIELD_OPS
    )
    # Double-buffered batch staging: state in/out in URAM (the large
    # matrices), metric terms and connectivity tables in BRAM.
    arrays["stage_in"] = ArraySpec(
        name="stage_in",
        words=2 * batch_elements * NUM_FIELDS * q,
        kind=MemoryKind.URAM,
    )
    arrays["stage_out"] = ArraySpec(
        name="stage_out",
        words=2 * batch_elements * NUM_FIELDS * q,
        kind=MemoryKind.URAM,
    )
    arrays["stage_metric"] = ArraySpec(
        name="stage_metric",
        words=2 * batch_elements * (q + METRIC_VALUES_PER_ELEMENT_CONST),
        kind=MemoryKind.BRAM,
    )
    arrays["stage_conn"] = ArraySpec(
        name="stage_conn",
        words=2 * batch_elements * q,
        kind=MemoryKind.BRAM,
    )
    return arrays


def _rkl_memory_ports(q: int) -> tuple[list[MemoryPort], list[MemoryPort]]:
    """Off-chip ports of the LOAD and STORE tasks.

    LOAD gathers the five conserved fields through the connectivity
    indirection and streams the per-element metric block; STORE streams
    the five element-contribution arrays contiguously ("storing the
    results for the next iteration").
    """
    load_ports = [
        MemoryPort(
            array=name,
            pattern="gather",
            values_per_iter=float(q),
            accesses_per_iter=float(q),
        )
        for name in ("rho", "mom_x", "mom_y", "mom_z", "energy")
    ]
    load_ports.append(
        MemoryPort(
            array="metric",
            pattern="stream",
            values_per_iter=float(q + METRIC_VALUES_PER_ELEMENT_CONST),
        )
    )
    load_ports.append(
        MemoryPort(
            array="connectivity",
            pattern="stream",
            values_per_iter=float(q),
        )
    )
    store_ports = [
        MemoryPort(
            array=f"res_{name}",
            pattern="stream",
            values_per_iter=float(q),
            is_write=True,
        )
        for name in ("rho", "mom_x", "mom_y", "mom_z", "energy")
    ]
    return load_ports, store_ports


def build_rkl_kernel(
    polynomial_order: int = 2, batch_elements: int = 1024
) -> RKLKernelModel:
    """Construct the RKL kernel model for the given FEM order."""
    if polynomial_order < 1:
        raise HLSError("polynomial_order must be >= 1")
    if batch_elements < 1:
        raise HLSError("batch_elements must be >= 1")
    n1 = polynomial_order + 1
    q = n1**3
    load_ports, store_ports = _rkl_memory_ports(q)
    return RKLKernelModel(
        polynomial_order=polynomial_order,
        nodes_per_element=q,
        node_loops={
            "node_load": _node_loop_2a(q),
            "node_compute": _node_loop_2b(q, n1),
            "node_store": _node_loop_2c(q),
        },
        onchip_arrays=_rkl_onchip_arrays(q, batch_elements),
        load_ports=load_ports,
        store_ports=store_ports,
        batch_elements=batch_elements,
    )


# ---------------------------------------------------------------------------
# RKU kernel
# ---------------------------------------------------------------------------


@dataclass
class RKUKernelModel:
    """Structural model of the RKU kernel.

    Five streaming loops over the global node array, one per updated
    quantity (``rho, u, T, E, p``), each of the form
    ``x[i] <- f(x[i], y[i], ...)``.
    """

    update_loops: list[LoopNest] = field(default_factory=list)
    onchip_arrays: dict[str, ArraySpec] = field(default_factory=dict)

    @property
    def num_loops(self) -> int:
        return len(self.update_loops)


#: Names of the five RKU update loops (the paper's updated quantities).
RKU_LOOP_NAMES = ("update_rho", "update_u", "update_T", "update_E", "update_p")


def build_rku_kernel(decoupled_interfaces: bool, read_latency_cycles: int = 8) -> RKUKernelModel:
    """Construct the RKU kernel model.

    ``decoupled_interfaces`` applies the Section III-C optimization: a
    dedicated read interface and a dedicated write interface per loop,
    removing the inter-iteration dependency (recurrence II 1 instead of
    ``1 + read_latency``).
    """
    from ..fpga.axi import update_loop_ii

    recurrence = update_loop_ii(decoupled_interfaces, read_latency_cycles)
    per_node = rku_update_per_node()
    loops = []
    for name in RKU_LOOP_NAMES:
        loops.append(
            LoopNest(
                name=name,
                # Trip count is a placeholder; timing scales it to the mesh.
                trip_count=1024,
                ops_per_iter={
                    "fadd": per_node.adds / len(RKU_LOOP_NAMES),
                    "fmul": per_node.muls / len(RKU_LOOP_NAMES),
                    "fdiv": per_node.divs / len(RKU_LOOP_NAMES),
                    "int": 2.0,
                },
                accesses=[
                    ArrayAccess("rku_stream_buf", reads_per_iter=2.0, writes_per_iter=1.0),
                ],
                recurrence_ii=recurrence,
            )
        )
    arrays = {
        "rku_stream_buf": ArraySpec(name="rku_stream_buf", words=4096),
    }
    return RKUKernelModel(update_loops=loops, onchip_arrays=arrays)
