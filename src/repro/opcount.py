"""Per-node operation-count building blocks (a dependency leaf).

:class:`OpCount` and the per-node arithmetic models of the FEM hot path
live here so that both consumers — the solver-level workload
characterization (:mod:`repro.solver.workload`) and the pipeline-IR
per-stage derivation (:mod:`repro.pipeline.opcounts`) — can import them
without coupling the two layers to each other.

Counting conventions
--------------------
- ``Q = (p + 1)**3`` nodes per element; ``n1 = p + 1``.
- A "value" is one scalar of the working precision (the CPU model prices
  fp64, the accelerator fp32).
- Gather/scatter DRAM traffic counts the element-copy volume (each
  element reads its own copy of shared nodes), matching both the paper's
  C++ (independent diffusion/convection passes) and the accelerator's
  LOAD/STORE streams.

The per-node operation counts follow directly from the arithmetic in
:mod:`repro.fem.operators` and :mod:`repro.physics`; each constant is
annotated with its origin.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Conserved fields (rho, 3 momentum, total energy).
NUM_FIELDS = 5
#: Fields whose gradient the diffusion pass needs (u, v, w, T).
NUM_GRADIENT_FIELDS = 4
#: Fields with a nonzero viscous flux (3 momentum + energy).
NUM_VISCOUS_FIELDS = 4
#: Per-element metric values streamed alongside the state for an affine
#: element: 9 inverse-Jacobian entries plus the per-node quadrature scale.
METRIC_VALUES_PER_ELEMENT_CONST = 9


@dataclass(frozen=True)
class OpCount:
    """Operation and traffic counts of one code region."""

    adds: float = 0.0
    muls: float = 0.0
    divs: float = 0.0
    specials: float = 0.0  # sqrt and friends
    dram_reads: float = 0.0  # values
    dram_writes: float = 0.0  # values

    @property
    def flops(self) -> float:
        """Total floating-point operations (all classes)."""
        return self.adds + self.muls + self.divs + self.specials

    @property
    def dram_values(self) -> float:
        """Total DRAM traffic in values."""
        return self.dram_reads + self.dram_writes

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            adds=self.adds + other.adds,
            muls=self.muls + other.muls,
            divs=self.divs + other.divs,
            specials=self.specials + other.specials,
            dram_reads=self.dram_reads + other.dram_reads,
            dram_writes=self.dram_writes + other.dram_writes,
        )

    def scaled(self, factor: float) -> "OpCount":
        """All counts multiplied by ``factor``."""
        return OpCount(
            adds=self.adds * factor,
            muls=self.muls * factor,
            divs=self.divs * factor,
            specials=self.specials * factor,
            dram_reads=self.dram_reads * factor,
            dram_writes=self.dram_writes * factor,
        )


# ---------------------------------------------------------------------------
# Per-node building blocks (functions of the 1D node count n1)
# ---------------------------------------------------------------------------


def primitives_per_node() -> OpCount:
    """Conservative -> primitive conversion at one node.

    ``u = m / rho`` (3 div), kinetic ``m.u/2`` (3 mul + 2 add + 1 mul),
    internal energy (1 sub), pressure (1 mul), temperature (1 div, 1 mul).
    """
    return OpCount(adds=3, muls=6, divs=4)


def gradient_per_node_per_field(n1: int) -> OpCount:
    """One field's physical gradient at one node.

    Reference gradient: 3 directions x (n1 mul + (n1 - 1) add); metric
    application (affine): 9 mul + 6 add.
    """
    return OpCount(adds=3 * (n1 - 1) + 6, muls=3 * n1 + 9)


def tau_per_node() -> OpCount:
    """Viscous stress tensor at one node (see ``physics.viscous``).

    Trace (2 add), symmetrization (9 add), scale by mu (9 mul), diagonal
    Stokes correction (1 mul + 3 mul + 3 add).
    """
    return OpCount(adds=14, muls=13)


def viscous_flux_per_node() -> OpCount:
    """``tau . u`` (9 mul + 6 add) plus ``kappa grad T`` (3 mul + 3 add)."""
    return OpCount(adds=9, muls=12)


def euler_flux_per_node() -> OpCount:
    """Euler fluxes: ``rho u`` (3 mul), ``rho u_i u_j + p I`` (9 mul +
    3 add), ``(E + p) u`` (1 add + 3 mul)."""
    return OpCount(adds=4, muls=15)


def weak_divergence_per_node_per_field(n1: int) -> OpCount:
    """One field's weak divergence at one node.

    Contravariant transform (9 mul + 6 add) + quadrature scaling (3 mul);
    transposed derivative in 3 directions (3 n1 mul + 3 (n1 - 1) add) and
    2 adds combining the direction partials.
    """
    return OpCount(adds=6 + 3 * (n1 - 1) + 2, muls=12 + 3 * n1)


# ---------------------------------------------------------------------------
# Per-element LOAD / STORE streams (the paper's Fig. 1 endpoints)
# ---------------------------------------------------------------------------


def load_element(q: int, num_fields: int = NUM_FIELDS) -> OpCount:
    """LOAD-element: stream state fields + metric terms from DRAM."""
    return OpCount(
        dram_reads=num_fields * q + q + METRIC_VALUES_PER_ELEMENT_CONST
    )


def store_element(q: int, num_fields: int) -> OpCount:
    """STORE-element-contribution: accumulating scatter (read-modify-write)."""
    return OpCount(
        adds=num_fields * q,
        dram_reads=num_fields * q,
        dram_writes=num_fields * q,
    )
