"""Stable content fingerprints of configuration objects.

The design-space exploration identifies work by *content*, not by
object identity: a cache entry is valid exactly when the mesh
parameters, the design point, and the evaluation tier that produced it
are byte-for-byte the ones being asked for again. This module provides
the one canonicalization both the result cache and the benchmark
artifact metadata use, so "same configuration" means the same thing
everywhere.

Canonical form: dataclasses become ``{"__type__": ClassName, fields}``,
mappings are key-sorted, sequences become lists, numpy scalars/arrays
collapse to Python numbers/lists, and floats are serialized by
``repr`` (shortest round-trip) — so the digest is stable across
processes, dict orderings, and container flavors, while *any* value
change (including a float's last bit) changes it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

from ..errors import DSEError

#: Bump when the canonical form itself changes; part of every digest so
#: stale on-disk cache entries can never satisfy a new scheme's lookup.
CANONICAL_SCHEME = 1


def canonicalize(value: Any) -> Any:
    """The JSON-ready canonical form of a configuration value.

    Supported: ``None``, bools, ints, floats, strings, dataclass
    instances, mappings with string-convertible keys, sequences (list /
    tuple / set — sets are sorted by their canonical JSON), numpy
    scalars and arrays. Anything else (functions, arbitrary objects,
    open handles) has no stable content identity and raises
    :class:`~repro.errors.DSEError`.
    """
    if isinstance(value, np.generic):
        # First: np.float64 subclasses float, and its repr is not the
        # plain float's.
        return canonicalize(value.item())
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr is the shortest round-trip form: equal floats agree,
        # different floats (even in the last bit) differ.
        return {"__float__": repr(value)}
    if isinstance(value, np.ndarray):
        return [canonicalize(item) for item in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            field.name: canonicalize(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        body["__type__"] = type(value).__name__
        return body
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        for key in value:
            if not isinstance(key, (str, int, bool)):
                raise DSEError(
                    f"cannot fingerprint mapping key {key!r}: keys must "
                    "be strings, ints, or bools"
                )
            out[str(key)] = canonicalize(value[key])
        return dict(sorted(out.items()))
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (canonicalize(item) for item in value),
            key=lambda c: json.dumps(c, sort_keys=True),
        )
    raise DSEError(
        f"cannot fingerprint value of type {type(value).__name__}: no "
        "stable content identity"
    )


def fingerprint(value: Any) -> str:
    """Hex SHA-256 digest of a value's canonical form.

    Equal content yields equal digests regardless of container flavor
    (tuple vs list, dict insertion order, numpy vs Python scalars);
    any differing field yields a different digest — both properties are
    collision-tested by the suite.
    """
    canonical = {"scheme": CANONICAL_SCHEME, "value": canonicalize(value)}
    payload = json.dumps(
        canonical, sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()
