"""Campaign execution: the supervised tiered sweep, checkpoints, async jobs.

:func:`run_campaign` drives the whole ladder for one
:class:`~repro.dse.campaign.CampaignSpec`:

1. **closed-form tier** over every feasible grid point, sharded in
   chunked batches over a :class:`~repro.dse.pool.SupervisedPool` —
   dead workers are respawned, hung batches hit per-batch deadlines,
   faulted batches retry with capped exponential backoff and bisect
   down to the offending point, and points that exhaust the retry
   budget are **quarantined** as structured
   :class:`~repro.dse.tiers.PointResult` failures. A campaign always
   completes with an explicit casualty list, never an unhandled worker
   exception. Batches are index-tagged and merged in campaign order,
   so the result list is deterministic regardless of worker count,
   retries, or completion order.
2. **exact tier** on the Pareto front's best ``max_survivors`` points
   (the vectorized schedule solve), each checked against its
   closed-form pricing within the <2% parity bound.
3. **cosim tier** on the best ``max_cosim`` exact survivors (full
   payload-carrying co-simulation), each checked against its exact
   pricing within the <5% bound.

Promoted-tier evaluations run in the parent under the same quarantine
rule: a raising point becomes a ``status="failed"`` casualty, not a
dead campaign.

**Checkpoint/resume** — with a disk-backed cache, every completed
batch and every quarantined failure is journaled
(:mod:`repro.dse.checkpoint`) next to the content-addressed cache
entries. ``run_campaign(..., resume=True)`` replays a killed
campaign: cached points are served without recomputation (100% hits
on completed batches), journaled quarantines are restored without
re-failing, and only genuinely unpriced points are dispatched.

:class:`CampaignExecutor` is the asynchronous front-end: ``submit`` a
spec (optionally with a job ``timeout``), ``poll`` its status
(``"running"`` / ``"done"`` / ``"failed"`` / ``"cancelled"``),
``cancel`` it, ``collect`` the result — campaigns run on background
threads (each of which may own its own process pool), so a driver can
keep several sweeps in flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..backend import resolve_backend_name
from ..errors import CampaignCancelled, DSEError
from ..testing import faults
from .cache import CacheStats, ResultCache, cache_key
from .campaign import CampaignSpec, DesignPoint
from .checkpoint import CampaignJournal, JournalState, journal_path
from .pareto import pareto_front
from .pool import PoolStats, RetryPolicy, SupervisedPool, evaluate_one
from .tiers import (
    TIER_AGREEMENT_BOUNDS,
    TIERS,
    PointResult,
    prewarm_designs,
    tier_agreement,
)


@dataclass
class AgreementCheck:
    """One promoted point's cross-tier consistency record."""

    point: DesignPoint
    tier: str
    relative_error: float
    bound: float

    @property
    def ok(self) -> bool:
        return self.relative_error <= self.bound

    def to_dict(self) -> dict:
        return {
            "point": self.point.spec(),
            "tier": self.tier,
            "relative_error": self.relative_error,
            "bound": self.bound,
            "ok": self.ok,
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    #: Closed-form pricing of every feasible point, in expansion order
    #: (quarantined casualties included, with ``status="failed"``).
    results: list[PointResult]
    #: Infeasible grid points with their reasons.
    skipped: list[tuple[DesignPoint, str]]
    #: Non-dominated closed-form results (cycles vs LUT/DSP/BRAM).
    front: list[PointResult]
    #: Exact-tier pricing of the promoted front candidates.
    survivors: list[PointResult] = field(default_factory=list)
    #: Co-simulated pricing of the finalists.
    cosim: list[PointResult] = field(default_factory=list)
    #: Cross-tier consistency of every promoted point.
    agreement: list[AgreementCheck] = field(default_factory=list)
    #: Cache accounting of the run (``None`` when uncached).
    cache_stats: CacheStats | None = None
    #: Supervised-pool accounting (``None`` when no pool ran).
    supervision: PoolStats | None = None
    #: True when this run resumed from a checkpoint journal.
    resumed: bool = False

    @property
    def num_grid_points(self) -> int:
        return len(self.results) + len(self.skipped)

    @property
    def failures(self) -> list[PointResult]:
        """The campaign's casualty list: every quarantined point across
        every tier."""
        return [
            r
            for tier_results in (self.results, self.survivors, self.cosim)
            for r in tier_results
            if not r.ok
        ]

    @property
    def violations(self) -> list[AgreementCheck]:
        """Agreement checks that exceeded their tier's bound."""
        return [check for check in self.agreement if not check.ok]

    def to_dict(self) -> dict:
        """JSON-ready campaign summary (the BENCH artifact body)."""
        stats = self.cache_stats
        return {
            "campaign": self.spec.spec(),
            "num_grid_points": self.num_grid_points,
            "num_feasible": len(self.results),
            "num_skipped": len(self.skipped),
            "num_failed": len(self.failures),
            "failures": [r.to_dict() for r in self.failures],
            "pareto_front": [r.to_dict() for r in self.front],
            "survivors": [r.to_dict() for r in self.survivors],
            "cosim": [r.to_dict() for r in self.cosim],
            "agreement": [check.to_dict() for check in self.agreement],
            "resumed": self.resumed,
            "supervision": None
            if self.supervision is None
            else self.supervision.to_dict(),
            "cache": None
            if stats is None
            else {
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "corrupt": stats.corrupt,
                "write_errors": stats.write_errors,
                "hit_rate": stats.hit_rate,
            },
        }


def _check_cancel(cancel) -> None:
    if cancel is not None and cancel.is_set():
        raise CampaignCancelled("campaign cancelled")


def _evaluate_tier(
    points: list[DesignPoint],
    tier: str,
    cache: ResultCache | None,
    workers: int,
    chunk_size: int,
    options: dict | None = None,
    *,
    retry: RetryPolicy | None = None,
    journal: CampaignJournal | None = None,
    journaled: JournalState | None = None,
    supervision: PoolStats | None = None,
    cancel=None,
) -> list[PointResult]:
    """Price points at one tier: journal-first, cache-second, then the
    supervised pool (grid tier) or the in-process quarantine loop
    (promoted tiers).

    The parent resolves journaled quarantines and cache hits up front
    and ships only genuine misses to the pool; batches come back
    index-tagged and slot into the campaign-order result list, so merge
    order never depends on scheduling, retries, or bisection.
    ``options`` are forwarded to :func:`~repro.dse.tiers.evaluate_point`
    (the cosim tier's backend / verify configuration).
    """
    options = options or {}
    results: list[PointResult | None] = [None] * len(points)
    missing: list[tuple[int, DesignPoint]] = []
    for index, point in enumerate(points):
        if journaled is not None and (tier, index) in journaled.failures:
            # A quarantine recorded by the killed run: restore it
            # instead of re-failing (failures are never cached).
            _, error = journaled.failures[(tier, index)]
            results[index] = PointResult.failed(point, tier, error)
            continue
        hit = cache.lookup(point, tier) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            missing.append((index, point))

    _check_cancel(cancel)
    if missing and tier == "closed-form":
        # The grid tier always runs under supervision (workers >= 1):
        # a crashing or hanging evaluation must never take the campaign
        # (or, at workers=1, the caller's process) down with it. Build
        # every needed design in the parent first — fork-started
        # workers inherit the populated cache instead of
        # re-elaborating.
        try:
            prewarm_designs(point for _, point in missing)
        except Exception:  # noqa: BLE001 - workers re-raise per point
            pass
        cache_dir = None if cache is None else cache.directory
        batches = [
            missing[start : start + chunk_size]
            for start in range(0, len(missing), chunk_size)
        ]
        completed_batches = 0

        def on_batch(batch_id: int, entries) -> None:
            nonlocal completed_batches
            if journal is not None:
                journal.batch_done(tier, batch_id)
            completed_batches += 1
            # Parent-side crash seam: the SIGKILL-resume tests kill the
            # *campaign* after N completed batches, with every
            # completed batch already persisted by the workers.
            faults.trip("dse.batch", context=completed_batches)

        pool = SupervisedPool(
            max(1, workers), cache_dir=cache_dir, retry=retry
        )
        try:
            priced, quarantined = pool.run(
                tier, batches, options, on_batch=on_batch, cancel=cancel
            )
        finally:
            pool.close()
            if supervision is not None:
                supervision.merge(pool.stats)
        for index, result in priced.items():
            if cache is not None:
                # Workers already persisted to the shared directory;
                # fill the parent's memory layer only.
                point = points[index]
                cache.put(
                    cache_key(point, tier),
                    result,
                    persist=cache.directory is None,
                )
            results[index] = result
        for index, (point, error) in quarantined.items():
            results[index] = PointResult.failed(point, tier, error)
            if journal is not None:
                journal.failure(tier, index, point, error)
    elif missing:
        # Promoted tiers run in the parent (their point counts are
        # bounded by max_survivors/max_cosim) under the same quarantine
        # rule: a raising evaluation becomes a casualty, not a crash.
        for index, point in missing:
            _check_cancel(cancel)
            try:
                result = evaluate_one(index, point, tier, options)
            except CampaignCancelled:
                raise
            except Exception as exc:  # noqa: BLE001 - quarantined
                error = f"{type(exc).__name__}: {exc}"
                results[index] = PointResult.failed(point, tier, error)
                if journal is not None:
                    journal.failure(tier, index, point, error)
                continue
            if cache is not None:
                cache.store(point, tier, result)
            results[index] = result
    if journal is not None:
        journal.tier_done(tier)
    return results  # type: ignore[return-value]


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    highest_tier: str = "cosim",
    chunk_size: int = 32,
    retry: RetryPolicy | None = None,
    resume: bool = False,
    cancel: "threading.Event | None" = None,
) -> CampaignResult:
    """Run one campaign through the evaluation ladder.

    Parameters
    ----------
    spec:
        The sweep definition.
    workers:
        Supervised-pool width for the closed-form grid sweep. The grid
        tier runs under supervision even at ``workers=1``; promoted
        tiers run in-process either way (their point counts are bounded
        by ``max_survivors``/``max_cosim``).
    cache:
        Content-addressed result store; misses are computed and stored,
        hits are served (and flagged ``from_cache``) without
        recomputation. A disk-backed cache additionally hosts the
        checkpoint journal.
    highest_tier:
        How far up the ladder to promote: ``"closed-form"`` prices the
        grid only, ``"exact"`` adds the schedule-solve tier, ``"cosim"``
        (default) runs the full ladder.
    chunk_size:
        Points per pool batch (amortizes dispatch overhead).
    retry:
        The :class:`~repro.dse.pool.RetryPolicy` of the supervised pool
        (max retries, per-batch deadline, backoff); defaults are
        production-safe.
    resume:
        Resume a killed or interrupted run of this same spec from its
        checkpoint journal: completed points are pure cache hits,
        journaled quarantines are restored, only unpriced points are
        dispatched. Requires a disk-backed ``cache``.
    cancel:
        A :class:`threading.Event`; once set, the campaign tears its
        pool down and raises
        :class:`~repro.errors.CampaignCancelled`.

    Raises
    ------
    DSEError
        On invalid arguments or an all-infeasible grid.
    CheckpointError
        When ``resume=True`` finds a journal written by a different
        campaign.
    CampaignCancelled
        When ``cancel`` fires before completion.
    """
    if highest_tier not in TIERS:
        raise DSEError(
            f"unknown tier {highest_tier!r}; tiers: {', '.join(TIERS)}"
        )
    if workers < 1:
        raise DSEError("workers must be >= 1")
    if chunk_size < 1:
        raise DSEError("chunk_size must be >= 1")
    if resume and (cache is None or cache.directory is None):
        raise DSEError(
            "resume=True needs a disk-backed cache (the checkpoint "
            "journal lives in the cache directory)"
        )

    journal: CampaignJournal | None = None
    journaled: JournalState | None = None
    resumed = False
    if cache is not None and cache.directory is not None:
        fp = spec.fingerprint()
        journal = CampaignJournal(journal_path(cache.directory, fp))
        if resume:
            state = journal.load(fp)
            if state.exists:
                journaled = state
                resumed = True
        else:
            # A fresh run must not inherit a stale journal of the same
            # spec (e.g. a completed earlier campaign).
            journal.discard()
        if not resumed:
            journal.begin(fp)

    supervision = PoolStats()
    tier_kwargs = {
        "retry": retry,
        "journal": journal,
        "journaled": journaled,
        "supervision": supervision,
        "cancel": cancel,
    }
    try:
        points, skipped = spec.expand()
        closed = _evaluate_tier(
            points, "closed-form", cache, workers, chunk_size, **tier_kwargs
        )
        ok_closed = [r for r in closed if r.ok]
        front = pareto_front(ok_closed) if ok_closed else []
        result = CampaignResult(
            spec=spec,
            results=closed,
            skipped=skipped,
            front=front,
            cache_stats=None if cache is None else cache.stats,
            supervision=supervision,
            resumed=resumed,
        )
        if highest_tier == "closed-form":
            if journal is not None:
                journal.end()
            return result

        by_point = {r.point: r for r in ok_closed}
        candidates = sorted(front, key=lambda r: r.step_cycles)
        promoted = [r.point for r in candidates[: spec.max_survivors]]
        result.survivors = _evaluate_tier(
            promoted, "exact", cache, 1, chunk_size, **tier_kwargs
        )
        for exact in result.survivors:
            if not exact.ok:
                continue
            result.agreement.append(
                AgreementCheck(
                    point=exact.point,
                    tier="exact",
                    relative_error=tier_agreement(
                        by_point[exact.point], exact
                    ),
                    bound=TIER_AGREEMENT_BOUNDS["exact"],
                )
            )
        if highest_tier == "exact":
            if journal is not None:
                journal.end()
            return result

        ok_exact = [r for r in result.survivors if r.ok]
        by_point_exact = {r.point: r for r in ok_exact}
        finalists = sorted(ok_exact, key=lambda r: r.step_cycles)
        promoted = [r.point for r in finalists[: spec.max_cosim]]
        # The finalists' payload execution is configured by the spec: the
        # backend is resolved HERE (explicit > REPRO_BACKEND > default) so
        # the streamed ``_many`` kernels hit the chosen backend's batched
        # forms instead of inheriting the module default, and the
        # redundant functional checking solve runs only when the campaign
        # asks for it.
        cosim_options = {
            "backend": resolve_backend_name(spec.backend),
            "verify": spec.cosim_verify,
        }
        result.cosim = _evaluate_tier(
            promoted, "cosim", cache, 1, chunk_size, cosim_options,
            **tier_kwargs,
        )
        for cosim in result.cosim:
            if not cosim.ok:
                continue
            result.agreement.append(
                AgreementCheck(
                    point=cosim.point,
                    tier="cosim",
                    relative_error=tier_agreement(
                        by_point_exact[cosim.point], cosim
                    ),
                    bound=TIER_AGREEMENT_BOUNDS["cosim"],
                )
            )
        if journal is not None:
            journal.end()
        return result
    finally:
        if journal is not None:
            journal.close()


class CampaignExecutor:
    """Asynchronous batch front-end over :func:`run_campaign`.

    Each submitted campaign runs on its own daemon thread (which may in
    turn own a process pool); jobs are addressed by the returned id and
    support deadlines (``timeout=``) and cooperative cancellation
    (:meth:`cancel`).
    """

    def __init__(self) -> None:
        self._jobs: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._counter = 0

    def submit(
        self,
        spec: CampaignSpec,
        *,
        timeout: float | None = None,
        **options,
    ) -> str:
        """Start a campaign in the background; returns its job id.

        ``timeout`` is a job deadline in seconds: a campaign still
        running when it expires is cancelled and polls ``"failed"``
        with a deadline error. Remaining ``options`` are forwarded to
        :func:`run_campaign`.
        """
        if timeout is not None and timeout <= 0:
            raise DSEError("job timeout must be positive (or None)")
        with self._lock:
            self._counter += 1
            job_id = f"{spec.name}-{self._counter}"
            job: dict = {
                "result": None,
                "error": None,
                "cancel": threading.Event(),
                "cancelled": False,
                "timed_out": False,
                "timer": None,
            }
            self._jobs[job_id] = job

        def runner() -> None:
            try:
                job["result"] = run_campaign(
                    spec, cancel=job["cancel"], **options
                )
            except CampaignCancelled as exc:
                if job["timed_out"]:
                    job["error"] = DSEError(
                        f"campaign job {job_id!r} exceeded its "
                        f"{timeout}s deadline"
                    )
                else:
                    job["error"] = exc
            except BaseException as exc:  # noqa: BLE001 - reported at collect
                job["error"] = exc
            finally:
                timer = job["timer"]
                if timer is not None:
                    timer.cancel()

        thread = threading.Thread(
            target=runner, name=f"dse-{job_id}", daemon=True
        )
        job["thread"] = thread
        if timeout is not None:

            def expire() -> None:
                job["timed_out"] = True
                job["cancel"].set()

            timer = threading.Timer(timeout, expire)
            timer.daemon = True
            job["timer"] = timer
            timer.start()
        thread.start()
        return job_id

    def _job(self, job_id: str) -> dict:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise DSEError(f"unknown campaign job {job_id!r}") from None

    def cancel(self, job_id: str) -> None:
        """Request cooperative cancellation of a running campaign.

        Idempotent; a finished job is unaffected. A cancelled job polls
        ``"cancelled"`` and :meth:`collect` re-raises its
        :class:`~repro.errors.CampaignCancelled`.
        """
        job = self._job(job_id)
        job["cancelled"] = True
        job["cancel"].set()

    def poll(self, job_id: str) -> str:
        """``"running"``, ``"done"``, ``"failed"``, or ``"cancelled"``."""
        job = self._job(job_id)
        if job["thread"].is_alive():
            return "running"
        if job["error"] is None:
            return "done"
        if isinstance(job["error"], CampaignCancelled):
            return "cancelled"
        return "failed"

    def collect(self, job_id: str, timeout: float | None = None):
        """Wait for a campaign and return its :class:`CampaignResult`.

        Re-raises the campaign's exception if it failed (including the
        deadline :class:`~repro.errors.DSEError` of a timed-out job and
        the :class:`~repro.errors.CampaignCancelled` of a cancelled
        one); raises :class:`~repro.errors.DSEError` if it is still
        running after ``timeout`` seconds.
        """
        job = self._job(job_id)
        job["thread"].join(timeout)
        if job["thread"].is_alive():
            raise DSEError(
                f"campaign job {job_id!r} still running after {timeout}s"
            )
        if job["error"] is not None:
            raise job["error"]
        return job["result"]

    def jobs(self) -> list[str]:
        """Ids of every submitted job, in submission order."""
        return list(self._jobs)
