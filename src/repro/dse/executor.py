"""Campaign execution: the tiered sweep, process-pool sharding, async jobs.

:func:`run_campaign` drives the whole ladder for one
:class:`~repro.dse.campaign.CampaignSpec`:

1. **closed-form tier** over every feasible grid point — optionally
   sharded over a process pool in chunked batches. The parent
   pre-checks the content-addressed cache and dispatches only the
   misses; designs are pre-warmed in the parent so fork-started workers
   inherit the builds; batches are index-tagged and merged back in
   campaign order, so the result list is deterministic regardless of
   worker count or completion order.
2. **exact tier** on the Pareto front's best ``max_survivors`` points
   (the vectorized schedule solve), each checked against its
   closed-form pricing within the <2% parity bound.
3. **cosim tier** on the best ``max_cosim`` exact survivors (full
   payload-carrying co-simulation), each checked against its exact
   pricing within the <5% bound.

:class:`CampaignExecutor` is the asynchronous front-end: ``submit`` a
spec, ``poll`` its status, ``collect`` the result — campaigns run on
background threads (each of which may own its own process pool), so a
driver can keep several sweeps in flight.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..backend import resolve_backend_name
from ..errors import DSEError
from .cache import CacheStats, ResultCache, cache_key
from .campaign import CampaignSpec, DesignPoint
from .pareto import pareto_front
from .tiers import (
    TIER_AGREEMENT_BOUNDS,
    TIERS,
    PointResult,
    evaluate_point,
    prewarm_designs,
    tier_agreement,
)


def _pool_context():
    """Fork when the platform offers it (workers inherit the pre-warmed
    design cache); the platform default otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _evaluate_batch(args):
    """Pool worker: price one index-tagged batch, persist to the shared
    cache directory when one is configured."""
    index, points, tier, cache_dir, options = args
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results = []
    for point in points:
        result = evaluate_point(point, tier, **options)
        if cache is not None:
            cache.store(point, tier, result)
        results.append(result)
    return index, results


@dataclass
class AgreementCheck:
    """One promoted point's cross-tier consistency record."""

    point: DesignPoint
    tier: str
    relative_error: float
    bound: float

    @property
    def ok(self) -> bool:
        return self.relative_error <= self.bound

    def to_dict(self) -> dict:
        return {
            "point": self.point.spec(),
            "tier": self.tier,
            "relative_error": self.relative_error,
            "bound": self.bound,
            "ok": self.ok,
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    #: Closed-form pricing of every feasible point, in expansion order.
    results: list[PointResult]
    #: Infeasible grid points with their reasons.
    skipped: list[tuple[DesignPoint, str]]
    #: Non-dominated closed-form results (cycles vs LUT/DSP/BRAM).
    front: list[PointResult]
    #: Exact-tier pricing of the promoted front candidates.
    survivors: list[PointResult] = field(default_factory=list)
    #: Co-simulated pricing of the finalists.
    cosim: list[PointResult] = field(default_factory=list)
    #: Cross-tier consistency of every promoted point.
    agreement: list[AgreementCheck] = field(default_factory=list)
    #: Cache accounting of the run (``None`` when uncached).
    cache_stats: CacheStats | None = None

    @property
    def num_grid_points(self) -> int:
        return len(self.results) + len(self.skipped)

    @property
    def violations(self) -> list[AgreementCheck]:
        """Agreement checks that exceeded their tier's bound."""
        return [check for check in self.agreement if not check.ok]

    def to_dict(self) -> dict:
        """JSON-ready campaign summary (the BENCH artifact body)."""
        stats = self.cache_stats
        return {
            "campaign": self.spec.spec(),
            "num_grid_points": self.num_grid_points,
            "num_feasible": len(self.results),
            "num_skipped": len(self.skipped),
            "pareto_front": [r.to_dict() for r in self.front],
            "survivors": [r.to_dict() for r in self.survivors],
            "cosim": [r.to_dict() for r in self.cosim],
            "agreement": [check.to_dict() for check in self.agreement],
            "cache": None
            if stats is None
            else {
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "hit_rate": stats.hit_rate,
            },
        }


def _evaluate_tier(
    points: list[DesignPoint],
    tier: str,
    cache: ResultCache | None,
    workers: int,
    chunk_size: int,
    options: dict | None = None,
) -> list[PointResult]:
    """Price points at one tier, cache-first, optionally pooled.

    The parent resolves every cache hit up front and ships only the
    misses to the pool; worker batches come back index-tagged and slot
    into the campaign-order result list, so merge order never depends
    on scheduling. ``options`` are forwarded to
    :func:`~repro.dse.tiers.evaluate_point` (the cosim tier's backend /
    verify configuration).
    """
    options = options or {}
    results: list[PointResult | None] = [None] * len(points)
    missing: list[tuple[int, DesignPoint]] = []
    for index, point in enumerate(points):
        hit = cache.lookup(point, tier) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            missing.append((index, point))

    if missing and (workers <= 1 or len(missing) == 1):
        for index, point in missing:
            result = evaluate_point(point, tier, **options)
            if cache is not None:
                cache.store(point, tier, result)
            results[index] = result
    elif missing:
        # Build every needed design in the parent first: fork-started
        # workers inherit the populated cache instead of re-elaborating.
        prewarm_designs(point for _, point in missing)
        cache_dir = None if cache is None else cache.directory
        chunks = [
            missing[start : start + chunk_size]
            for start in range(0, len(missing), chunk_size)
        ]
        jobs = [
            (ci, [point for _, point in chunk], tier, cache_dir, options)
            for ci, chunk in enumerate(chunks)
        ]
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            for chunk_index, batch in pool.map(_evaluate_batch, jobs):
                for (index, point), result in zip(
                    chunks[chunk_index], batch
                ):
                    if cache is not None:
                        # Workers already persisted to the shared
                        # directory; fill the parent's memory layer only.
                        cache.put(
                            cache_key(point, tier),
                            result,
                            persist=cache.directory is None,
                        )
                    results[index] = result
    return results  # type: ignore[return-value]


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    highest_tier: str = "cosim",
    chunk_size: int = 32,
) -> CampaignResult:
    """Run one campaign through the evaluation ladder.

    Parameters
    ----------
    spec:
        The sweep definition.
    workers:
        Process-pool width for the closed-form grid sweep; ``1`` runs
        in-process. Promoted tiers run in-process either way (their
        point counts are bounded by ``max_survivors``/``max_cosim``).
    cache:
        Content-addressed result store; misses are computed and stored,
        hits are served (and flagged ``from_cache``) without
        recomputation.
    highest_tier:
        How far up the ladder to promote: ``"closed-form"`` prices the
        grid only, ``"exact"`` adds the schedule-solve tier, ``"cosim"``
        (default) runs the full ladder.
    chunk_size:
        Points per pool batch (amortizes dispatch overhead).

    Raises
    ------
    DSEError
        On invalid arguments or an all-infeasible grid.
    """
    if highest_tier not in TIERS:
        raise DSEError(
            f"unknown tier {highest_tier!r}; tiers: {', '.join(TIERS)}"
        )
    if workers < 1:
        raise DSEError("workers must be >= 1")
    if chunk_size < 1:
        raise DSEError("chunk_size must be >= 1")
    points, skipped = spec.expand()
    closed = _evaluate_tier(points, "closed-form", cache, workers, chunk_size)
    front = pareto_front(closed)
    result = CampaignResult(
        spec=spec,
        results=closed,
        skipped=skipped,
        front=front,
        cache_stats=None if cache is None else cache.stats,
    )
    if highest_tier == "closed-form":
        return result

    by_point = {r.point: r for r in closed}
    candidates = sorted(front, key=lambda r: r.step_cycles)
    promoted = [r.point for r in candidates[: spec.max_survivors]]
    result.survivors = _evaluate_tier(promoted, "exact", cache, 1, chunk_size)
    for exact in result.survivors:
        result.agreement.append(
            AgreementCheck(
                point=exact.point,
                tier="exact",
                relative_error=tier_agreement(by_point[exact.point], exact),
                bound=TIER_AGREEMENT_BOUNDS["exact"],
            )
        )
    if highest_tier == "exact":
        return result

    by_point_exact = {r.point: r for r in result.survivors}
    finalists = sorted(result.survivors, key=lambda r: r.step_cycles)
    promoted = [r.point for r in finalists[: spec.max_cosim]]
    # The finalists' payload execution is configured by the spec: the
    # backend is resolved HERE (explicit > REPRO_BACKEND > default) so
    # the streamed ``_many`` kernels hit the chosen backend's batched
    # forms instead of inheriting the module default, and the redundant
    # functional checking solve runs only when the campaign asks for it.
    cosim_options = {
        "backend": resolve_backend_name(spec.backend),
        "verify": spec.cosim_verify,
    }
    result.cosim = _evaluate_tier(
        promoted, "cosim", cache, 1, chunk_size, cosim_options
    )
    for cosim in result.cosim:
        result.agreement.append(
            AgreementCheck(
                point=cosim.point,
                tier="cosim",
                relative_error=tier_agreement(
                    by_point_exact[cosim.point], cosim
                ),
                bound=TIER_AGREEMENT_BOUNDS["cosim"],
            )
        )
    return result


class CampaignExecutor:
    """Asynchronous batch front-end over :func:`run_campaign`.

    Each submitted campaign runs on its own daemon thread (which may in
    turn own a process pool); jobs are addressed by the returned id.
    """

    def __init__(self) -> None:
        self._jobs: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._counter = 0

    def submit(self, spec: CampaignSpec, **options) -> str:
        """Start a campaign in the background; returns its job id.

        ``options`` are forwarded to :func:`run_campaign`.
        """
        with self._lock:
            self._counter += 1
            job_id = f"{spec.name}-{self._counter}"
            job: dict = {"result": None, "error": None}
            self._jobs[job_id] = job

        def runner() -> None:
            try:
                job["result"] = run_campaign(spec, **options)
            except BaseException as exc:  # noqa: BLE001 - reported at collect
                job["error"] = exc

        thread = threading.Thread(
            target=runner, name=f"dse-{job_id}", daemon=True
        )
        job["thread"] = thread
        thread.start()
        return job_id

    def _job(self, job_id: str) -> dict:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise DSEError(f"unknown campaign job {job_id!r}") from None

    def poll(self, job_id: str) -> str:
        """``"running"``, ``"done"``, or ``"failed"``."""
        job = self._job(job_id)
        if job["thread"].is_alive():
            return "running"
        return "failed" if job["error"] is not None else "done"

    def collect(self, job_id: str, timeout: float | None = None):
        """Wait for a campaign and return its :class:`CampaignResult`.

        Re-raises the campaign's exception if it failed; raises
        :class:`~repro.errors.DSEError` if it is still running after
        ``timeout`` seconds.
        """
        job = self._job(job_id)
        job["thread"].join(timeout)
        if job["thread"].is_alive():
            raise DSEError(
                f"campaign job {job_id!r} still running after {timeout}s"
            )
        if job["error"] is not None:
            raise job["error"]
        return job["result"]

    def jobs(self) -> list[str]:
        """Ids of every submitted job, in submission order."""
        return list(self._jobs)
