"""Tiered evaluation of design points: closed form, exact, co-simulated.

The exploration prices the *entire* grid with the closed-form
accelerator models (microseconds per point), promotes the Pareto
survivors to the exact vectorized schedule solve
(:func:`repro.accel.cosim.exact_rkl_stage_cycles` — the very graphs a
co-simulation would run, without payloads), and spends full
payload-carrying co-simulation (:func:`repro.accel.cosim.
cosimulate_rk_stage`) only on the front's finalists. Each rung is the
cheaper rung's auditor: promoted points must agree with the tier below
within the parity bounds the co-simulation suite already established
(closed form vs schedule <2%, trace vs closed form <5%), so a modeling
regression surfaces as a tier-agreement violation, not a silently wrong
front.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..accel.cosim import (
    analytic_block_cycles,
    analytic_rku_step_cycles,
    cosimulate_rk_stage,
    exact_rkl_stage_cycles,
    exact_rku_step_cycles,
)
from ..accel.designs import (
    PROPOSED_OPTIONS,
    AcceleratorDesign,
    SHELL_RESOURCES,
    custom_design,
)
from ..accel.multi_cu import multi_cu_floorplan, nodes_per_compute_unit
from ..errors import DSEError
from ..fpga.device import device_by_name
from ..fpga.floorplan import clock_for_floorplan
from ..mesh.partition import element_blocks
from ..pipeline.navier_stokes import navier_stokes_pipeline
from ..timeint.butcher import RK4
from .campaign import DesignPoint

#: Evaluation tiers, cheapest first.
TIERS = ("closed-form", "exact", "cosim")

#: Maximum relative step-cycle disagreement a promoted point may show
#: against the tier below — the established parity bounds of the
#: co-simulation suite (closed form vs schedule engine, trace vs closed
#: form).
TIER_AGREEMENT_BOUNDS = {"exact": 0.02, "cosim": 0.05}

#: Designs are immutable once elaborated and depend only on the
#: polynomial order and target device, so one build serves every mesh
#: size, CU count, and block size sharing them. Module level (not
#: per-campaign) so a fork-started process pool inherits the parent's
#: pre-warmed builds.
_DESIGN_CACHE: dict[tuple[int, str], AcceleratorDesign] = {}


def design_for(point: DesignPoint) -> AcceleratorDesign:
    """The elaborated design a point prices, built once per (order, device).

    The architectural switches are the paper's proposed design; the
    sweep varies the workload-facing knobs (order via the kernel models,
    CU count and clock via the floorplan) around it.
    """
    key = (point.polynomial_order, point.device)
    if key not in _DESIGN_CACHE:
        options = replace(
            PROPOSED_OPTIONS,
            name=f"dse-p{point.polynomial_order}",
            polynomial_order=point.polynomial_order,
        )
        _DESIGN_CACHE[key] = custom_design(
            options, device_by_name(point.device)
        )
    return _DESIGN_CACHE[key]


def prewarm_designs(points) -> None:
    """Build every design the points need, in the calling process.

    Called by the parallel executor *before* creating its process pool:
    under the fork start method the workers inherit the populated
    :data:`_DESIGN_CACHE`, so no worker pays the per-design elaboration
    again.
    """
    for point in points:
        design_for(point)


@dataclass(frozen=True)
class PointResult:
    """One tier's pricing of one design point.

    ``step_cycles`` is the per-RK-step total (stage cycles times the RK4
    stage count, plus the RKU update) — the timing objective of the
    Pareto front; ``run_seconds`` scales it to the point's step count at
    the floorplan's achieved clock. Resource components are the
    post-P&R totals of the N-CU configuration (N RKL instances, one
    RKU, the static shell).
    """

    point: DesignPoint
    tier: str
    step_cycles: float
    rkl_stage_cycles: float
    rku_step_cycles: float
    clock_mhz: float
    step_seconds: float
    run_seconds: float
    num_nodes: int
    num_elements: int
    lut: float
    ff: float
    bram36: float
    uram: float
    dsp: float
    #: Max-norm relative state error of the co-simulated step against
    #: the functional solver (cosim tier only).
    state_max_rel_err: float | None = None
    #: ``"ok"`` for a priced point; ``"failed"`` for a quarantined one
    #: (its worker died repeatedly, its batch hit its deadline too many
    #: times, or its evaluation raised) — the campaign's casualty list
    #: is made of these instead of an unhandled exception.
    status: str = "ok"
    #: The quarantine reason when ``status != "ok"``.
    error: str | None = None
    #: True when this result was served by the content-addressed cache.
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """True for a successfully priced point."""
        return self.status == "ok"

    @classmethod
    def failed(
        cls, point: DesignPoint, tier: str, error: str
    ) -> "PointResult":
        """A quarantined casualty: zeroed numerics, the failure reason
        in ``error``, and ``status="failed"``."""
        return cls(
            point=point,
            tier=tier,
            step_cycles=0.0,
            rkl_stage_cycles=0.0,
            rku_step_cycles=0.0,
            clock_mhz=0.0,
            step_seconds=0.0,
            run_seconds=0.0,
            num_nodes=point.num_nodes,
            num_elements=point.num_elements,
            lut=0.0,
            ff=0.0,
            bram36=0.0,
            uram=0.0,
            dsp=0.0,
            status="failed",
            error=error,
        )

    def to_dict(self) -> dict:
        """JSON-ready form (the cache's on-disk payload)."""
        out = {
            field: getattr(self, field)
            for field in (
                "tier",
                "step_cycles",
                "rkl_stage_cycles",
                "rku_step_cycles",
                "clock_mhz",
                "step_seconds",
                "run_seconds",
                "num_nodes",
                "num_elements",
                "lut",
                "ff",
                "bram36",
                "uram",
                "dsp",
                "state_max_rel_err",
                "status",
                "error",
            )
        }
        out["point"] = self.point.spec()
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "PointResult":
        """Inverse of :meth:`to_dict`."""
        try:
            data = dict(payload)
            point = DesignPoint(**data.pop("point"))
            return cls(point=point, **data)
        except (KeyError, TypeError) as exc:
            raise DSEError(f"malformed cached result: {exc}") from None


def _clock_and_resources(
    point: DesignPoint, design: AcceleratorDesign
) -> tuple[float, dict[str, float]]:
    """Achieved clock and post-P&R totals of the point's floorplan."""
    device = device_by_name(point.device)
    plan = multi_cu_floorplan(design, point.num_cus, device)
    clock = clock_for_floorplan(plan)
    total = (
        design.rkl_resources.scaled(point.num_cus)
        + design.rku_resources
        + SHELL_RESOURCES
    )
    return clock, {
        "lut": total.lut,
        "ff": total.ff,
        "bram36": total.bram36,
        "uram": total.uram,
        "dsp": total.dsp,
    }


def _result(
    point: DesignPoint,
    tier: str,
    rkl_stage: float,
    rku_step: float,
    state_err: float | None = None,
) -> PointResult:
    design = design_for(point)
    clock, resources = _clock_and_resources(point, design)
    step_cycles = rkl_stage * RK4.num_stages + rku_step
    step_seconds = step_cycles / (clock * 1e6)
    return PointResult(
        point=point,
        tier=tier,
        step_cycles=float(step_cycles),
        rkl_stage_cycles=float(rkl_stage),
        rku_step_cycles=float(rku_step),
        clock_mhz=clock,
        step_seconds=step_seconds,
        run_seconds=step_seconds * point.num_steps,
        num_nodes=point.num_nodes,
        num_elements=point.num_elements,
        state_max_rel_err=state_err,
        **resources,
    )


def evaluate_closed_form(point: DesignPoint) -> PointResult:
    """Tier 1: the analytic block-token law, microseconds per point.

    RKL stage cycles are the max over compute units of
    :func:`~repro.accel.cosim.analytic_block_cycles` on the point's
    element shards; RKU is the streamed chain's closed form
    (:func:`~repro.accel.cosim.analytic_rku_step_cycles`). The fusion
    axis does not move this tier (role-group sums are fusion-invariant
    by construction) — asserted as a property by the tier tests.
    """
    design = design_for(point)
    nodes_per_cu = nodes_per_compute_unit(point.num_nodes, point.num_cus)
    rkl_stage = max(
        analytic_block_cycles(
            design,
            nodes_per_cu,
            [block.size for block in element_blocks(part, point.block_size)],
        )
        for part in point.element_partitions()
    )
    return _result(
        point,
        "closed-form",
        rkl_stage,
        analytic_rku_step_cycles(design, point.num_nodes),
    )


def evaluate_exact(point: DesignPoint) -> PointResult:
    """Tier 2: the exact vectorized schedule solve, no payloads.

    The same lowered graphs a co-simulation would run (per-CU chains of
    the point's fusion mode, merged under one clock), priced by the
    schedule engine alone.
    """
    design = design_for(point)
    rkl_stage = exact_rkl_stage_cycles(
        design,
        point.num_nodes,
        point.num_elements,
        block_size=point.block_size,
        num_cus=point.num_cus,
        partitions=point.element_partitions(),
        pipeline=navier_stokes_pipeline(point.fusion),
    )
    return _result(
        point,
        "exact",
        rkl_stage,
        exact_rku_step_cycles(design, point.num_nodes),
    )


def evaluate_cosim(
    point: DesignPoint,
    *,
    backend: str | None = None,
    num_workers: int | None = None,
    verify: bool = True,
) -> PointResult:
    """Tier 3: full payload-carrying co-simulation of the RK step(s).

    Streams the point's actual mesh through the lowered graphs
    (:func:`~repro.accel.cosim.cosimulate_rk_stage`): the stage cycles
    are measured windows of a run that computed the real physics, and
    the recorded ``state_max_rel_err`` proves it against the functional
    solver. The point's ``precision`` axis lands here: the streamed
    payloads run under that mode (the timing tiers are
    precision-invariant — cycles price token counts, not dtypes — so
    only this tier's recorded state error moves with it).

    ``backend`` selects the compute backend the streamed payload
    actions run on (``None`` defers to ``REPRO_BACKEND``/default) —
    cycles are backend-invariant, only wall-clock moves. ``verify``
    controls the redundant functional checking solve; with ``False``
    the result's ``state_max_rel_err`` is ``None``
    (:func:`run_campaign <repro.dse.executor.run_campaign>` passes the
    campaign's ``cosim_verify``, off by default).
    """
    design = design_for(point)
    mesh = point.mesh()
    case = initial = None
    if point.case == "channel":
        from ..physics.channel import decaying_shear_initial
        from ..physics.taylor_green import TGVCase

        case = TGVCase(mach=0.05, reynolds=100.0)
        initial = decaying_shear_initial(mesh.coords, case)
    result = cosimulate_rk_stage(
        design,
        mesh,
        backend=backend,
        case=case,
        initial_state=initial,
        block_size=point.block_size,
        partitions=point.element_partitions(),
        num_steps=point.num_steps,
        num_workers=num_workers,
        dtype=point.precision,
        verify=verify,
    )
    rkl_stage = sum(result.per_stage_rkl_cycles) / len(
        result.per_stage_rkl_cycles
    )
    return _result(
        point,
        "cosim",
        rkl_stage,
        result.rku_simulated_cycles,
        state_err=result.state_max_rel_err,
    )


_EVALUATORS = {
    "closed-form": evaluate_closed_form,
    "exact": evaluate_exact,
    "cosim": evaluate_cosim,
}


def evaluate_point(
    point: DesignPoint,
    tier: str,
    *,
    backend: str | None = None,
    num_workers: int | None = None,
    verify: bool = True,
) -> PointResult:
    """Price one point at one tier.

    ``backend`` / ``num_workers`` / ``verify`` configure the cosim
    tier's payload execution (see :func:`evaluate_cosim`); the timing
    tiers ignore them — cycles price token counts, not kernels.

    Raises :class:`~repro.errors.DSEError` on an unknown tier or an
    infeasible point.
    """
    try:
        evaluator = _EVALUATORS[tier]
    except KeyError:
        raise DSEError(
            f"unknown tier {tier!r}; tiers: {', '.join(TIERS)}"
        ) from None
    reason = point.infeasibility()
    if reason is not None:
        raise DSEError(f"cannot evaluate infeasible point: {reason}")
    if tier == "cosim":
        return evaluator(
            point, backend=backend, num_workers=num_workers, verify=verify
        )
    return evaluator(point)


def tier_agreement(a: PointResult, b: PointResult) -> float:
    """Relative step-cycle disagreement between two tiers' pricings."""
    return abs(a.step_cycles - b.step_cycles) / max(
        a.step_cycles, b.step_cycles
    )
