"""Supervised process pool for campaign sweeps.

The PR-6 executor sharded grid batches over a bare
``ProcessPoolExecutor`` — one segfaulting worker, one hung batch, and
the whole campaign (and every priced point) died with it. This module
replaces it with the supervision loop a batch scheduler would run:

- **per-batch deadlines** — a dispatched batch that does not reply
  within :attr:`RetryPolicy.batch_timeout` seconds has its worker
  killed and is retried elsewhere;
- **dead-worker detection and respawn** — an ``EOF``/``BrokenPipe`` on
  a worker channel (the observable of ``os._exit``, a segfault, or an
  OOM kill) frees the slot, and a fresh fork-started worker takes it;
- **capped-exponential-backoff retry** — a faulted batch re-enters the
  queue after :meth:`RetryPolicy.backoff_seconds`, up to
  :attr:`RetryPolicy.max_retries` re-dispatches;
- **bisection quarantine** — a batch that exhausts its retries is split
  in half and each half starts fresh, so repeated faults isolate the
  *offending* point(s); a single-point batch that exhausts its retries
  is quarantined as a structured failure (never an exception), and the
  campaign completes with an explicit casualty list;
- **poisoned-message rejection** — a reply that is not the protocol's
  ``("done", batch_id, entries)`` shape marks the worker compromised:
  kill, respawn, retry the batch.

Worker-side exceptions are *not* retried: the worker prices each point
under ``try/except`` and reports a per-point error entry — a
deterministic failure re-raised as a quarantined
:class:`~repro.dse.tiers.PointResult`, not worth burning retries on.

Determinism: batches carry ids, entries carry point indices, and the
caller merges by index — results are ordered by campaign position no
matter which worker priced what, how often a batch was retried, or how
bisection re-chunked it.

Fault seams (no-ops unless a :mod:`repro.testing.faults` plan is
installed): ``"dse.worker"`` fires in a worker as it picks up a batch
(context = batch id; crash / hang / poison), ``"dse.point"`` fires
before each point evaluation (context = point index; error / crash).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from ..errors import CampaignCancelled, DSEError
from ..testing import faults
from .cache import ResultCache
from .tiers import evaluate_point

#: Graceful close: seconds a worker gets to acknowledge ``("close",)``
#: before join escalates to ``terminate()`` and then ``kill()``.
_JOIN_TIMEOUT = 5.0
_ESCALATION_TIMEOUT = 1.0

#: Ceiling on one supervision wait so cancel events stay responsive
#: even with no deadline armed.
_MAX_WAIT = 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs of one campaign run.

    Parameters
    ----------
    max_retries:
        Re-dispatches a batch gets after a pool fault (crash, hang,
        poisoned reply) before it is bisected / quarantined.
    batch_timeout:
        Per-batch deadline in seconds; ``None`` disables hang
        detection (a dead worker is still detected via its pipe).
    backoff_base / backoff_max:
        Capped exponential backoff between re-dispatches of the same
        batch: ``min(backoff_max, backoff_base * 2**attempt)``.
    """

    max_retries: int = 2
    batch_timeout: float | None = 120.0
    backoff_base: float = 0.05
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise DSEError("max_retries must be >= 0")
        if self.batch_timeout is not None and self.batch_timeout <= 0:
            raise DSEError("batch_timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise DSEError(
                "backoff must satisfy 0 <= backoff_base <= backoff_max"
            )

    def backoff_seconds(self, attempt: int) -> float:
        return min(self.backoff_max, self.backoff_base * (2.0**attempt))


@dataclass
class PoolStats:
    """Supervision accounting of one pool (cumulative across runs)."""

    dispatched: int = 0
    completed: int = 0
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    crashes: int = 0
    poisoned: int = 0
    splits: int = 0
    quarantined: int = 0

    def to_dict(self) -> dict:
        return {
            name: getattr(self, name)
            for name in (
                "dispatched",
                "completed",
                "retries",
                "respawns",
                "timeouts",
                "crashes",
                "poisoned",
                "splits",
                "quarantined",
            )
        }

    def merge(self, other: "PoolStats") -> None:
        for name in self.to_dict():
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class _Attempt:
    """One (re)dispatch of a batch of ``(index, point)`` items."""

    batch_id: int
    items: list
    attempt: int = 0
    ready_at: float = 0.0


def evaluate_one(index: int, point, tier: str, options: dict):
    """Price one point (the shared per-point seam of the pool worker and
    the executor's in-process promoted-tier path)."""
    faults.trip("dse.point", context=index)
    return evaluate_point(point, tier, **options)


def _pool_worker(channel, cache_dir, inherited_fds=()) -> None:
    """Worker main loop: price batches, report per-point outcomes.

    Every point is priced under ``try/except``: a deterministic
    evaluation error becomes a structured ``("error", message)`` entry
    instead of killing the worker, so only genuine process faults
    (crash, hang, kill) ever cost the supervisor a retry. Successful
    results are persisted to the shared cache directory before the
    reply, so a parent crash after this batch loses nothing.

    ``inherited_fds`` are the parent-side pipe ends this fork-started
    worker inherited copies of — its own channel's parent end and those
    of its siblings. They MUST be closed here: a worker holding a copy
    of its own parent end would never see EOF after a parent crash
    (``os._exit``, SIGKILL) and would orphan forever instead of
    exiting.
    """
    for fd in inherited_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    while True:
        try:
            msg = channel.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "close":
            try:
                channel.send(("closed",))
            except (BrokenPipeError, OSError):
                pass
            break
        _, batch_id, tier, items, options = msg
        fired = faults.trip("dse.worker", context=batch_id)
        if fired is not None and fired.kind == "poison":
            # A poisoned pipe message: garbage instead of the protocol
            # reply. The supervisor must treat the worker as
            # compromised (kill, respawn, retry the batch).
            channel.send(["poisoned-pipe-message", batch_id])
            continue
        entries = []
        for index, point in items:
            try:
                result = evaluate_one(index, point, tier, options)
            except Exception as exc:  # noqa: BLE001 - quarantined upstream
                entries.append(
                    (index, "error", f"{type(exc).__name__}: {exc}")
                )
            else:
                if cache is not None:
                    cache.store(point, tier, result)
                entries.append((index, "ok", result))
        try:
            channel.send(("done", batch_id, entries))
        except (BrokenPipeError, OSError):
            break
    channel.close()


def _reap(proc, join_timeout: float | None = None) -> None:
    """Join with escalation: join -> terminate -> kill -> join.

    A wedged worker can never hang the caller: after ``join_timeout``
    it is terminated, after :data:`_ESCALATION_TIMEOUT` more it is
    SIGKILLed (which no handler can ignore), and the final join reaps
    the zombie.
    """
    timeout = _JOIN_TIMEOUT if join_timeout is None else join_timeout
    proc.join(timeout)
    if proc.is_alive():
        proc.terminate()
        proc.join(_ESCALATION_TIMEOUT)
    if proc.is_alive():
        proc.kill()
        proc.join()


class SupervisedPool:
    """A fork-started worker pool that survives its own workers.

    Parameters
    ----------
    num_workers:
        Worker process count (>= 1).
    cache_dir:
        Shared on-disk cache directory workers persist results to
        (``None`` disables worker-side persistence).
    retry:
        The :class:`RetryPolicy`; defaults to the module default.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        cache_dir=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if num_workers < 1:
            raise DSEError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.retry = retry or RetryPolicy()
        self.stats = PoolStats()
        self._workers: list = []
        self._channels: list = []
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()

    # -- lifecycle -----------------------------------------------------------

    @property
    def pool_active(self) -> bool:
        return bool(self._workers)

    def worker_pids(self) -> list[int]:
        return [proc.pid for proc in self._workers if proc is not None]

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, *, force: bool = False) -> None:
        """Tear the pool down; ``force`` skips the graceful handshake
        and kills immediately (the cancellation path)."""
        workers, self._workers = self._workers, []
        channels, self._channels = self._channels, []
        if not force:
            for chan in channels:
                if chan is None:
                    continue
                try:
                    chan.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in workers:
            if proc is None:
                continue
            if force:
                proc.kill()
                proc.join()
            else:
                _reap(proc)
        for chan in channels:
            if chan is not None:
                chan.close()

    def _spawn(self, slot: int) -> None:
        parent_end, child_end = self._ctx.Pipe()
        inherited = [
            chan.fileno() for chan in self._channels if chan is not None
        ] + [parent_end.fileno()]
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(child_end, self.cache_dir, inherited),
            daemon=True,
            name=f"dse-pool-{slot}",
        )
        proc.start()
        child_end.close()
        self._workers[slot] = proc
        self._channels[slot] = parent_end

    def _ensure(self) -> None:
        if not self._workers:
            self._workers = [None] * self.num_workers
            self._channels = [None] * self.num_workers
            for slot in range(self.num_workers):
                self._spawn(slot)

    def _replace(self, slot: int) -> None:
        """Kill slot's worker (it is dead or compromised) and respawn."""
        proc = self._workers[slot]
        chan = self._channels[slot]
        self._channels[slot] = None
        if chan is not None:
            chan.close()
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join()
        self._spawn(slot)
        self.stats.respawns += 1

    # -- supervision loop ----------------------------------------------------

    def run(
        self,
        tier: str,
        batches: list[list],
        options: dict | None = None,
        *,
        on_batch=None,
        cancel=None,
    ):
        """Price every ``(index, point)`` item of every batch.

        Returns ``(results, failures)``: ``results`` maps point index to
        its :class:`~repro.dse.tiers.PointResult`; ``failures`` maps
        point index to ``(point, error_message)`` for quarantined
        points. ``on_batch(batch_id, entries)`` runs in the parent after
        each batch completes (the checkpoint-journal hook). ``cancel``
        is a ``threading.Event``; once set the pool is force-closed and
        :class:`~repro.errors.CampaignCancelled` is raised.
        """
        options = options or {}
        self._ensure()
        results: dict[int, object] = {}
        failures: dict[int, tuple] = {}
        points_by_index = {
            index: point for batch in batches for index, point in batch
        }
        pending: deque[_Attempt] = deque(
            _Attempt(batch_id, list(items))
            for batch_id, items in enumerate(batches)
            if items
        )
        next_batch_id = len(batches)
        busy: dict[int, tuple[_Attempt, float | None]] = {}
        idle = list(range(self.num_workers))

        def fault(att: _Attempt, reason: str) -> None:
            """A pool-level fault on a dispatched batch: retry with
            backoff, bisect after the retry budget, quarantine last."""
            now = time.monotonic()
            if att.attempt < self.retry.max_retries:
                self.stats.retries += 1
                pending.append(
                    _Attempt(
                        att.batch_id,
                        att.items,
                        att.attempt + 1,
                        now + self.retry.backoff_seconds(att.attempt),
                    )
                )
                return
            if len(att.items) > 1:
                nonlocal next_batch_id
                self.stats.splits += 1
                mid = len(att.items) // 2
                for part in (att.items[:mid], att.items[mid:]):
                    pending.append(
                        _Attempt(
                            next_batch_id,
                            part,
                            0,
                            now + self.retry.backoff_seconds(att.attempt),
                        )
                    )
                    next_batch_id += 1
                return
            ((index, point),) = att.items
            failures[index] = (point, reason)
            self.stats.quarantined += 1

        while pending or busy:
            if cancel is not None and cancel.is_set():
                self.close(force=True)
                raise CampaignCancelled("campaign cancelled")
            now = time.monotonic()
            # Dispatch every ready attempt onto an idle worker.
            dispatched_any = True
            while idle and dispatched_any:
                dispatched_any = False
                for _ in range(len(pending)):
                    att = pending.popleft()
                    if att.ready_at > now:
                        pending.append(att)
                        continue
                    slot = idle.pop()
                    try:
                        self._channels[slot].send(
                            ("run", att.batch_id, tier, att.items, options)
                        )
                    except (BrokenPipeError, OSError):
                        self.stats.crashes += 1
                        self._replace(slot)
                        idle.append(slot)
                        fault(att, "worker unreachable at dispatch")
                        continue
                    deadline = (
                        None
                        if self.retry.batch_timeout is None
                        else now + self.retry.batch_timeout
                    )
                    busy[slot] = (att, deadline)
                    self.stats.dispatched += 1
                    dispatched_any = True
                    break
            if not busy:
                if pending:  # every attempt is backing off
                    wake = min(att.ready_at for att in pending)
                    time.sleep(min(_MAX_WAIT, max(0.0, wake - now)))
                continue
            # Wait for a reply, a death, a deadline, or a backoff expiry.
            wait_for = _MAX_WAIT
            for _, deadline in busy.values():
                if deadline is not None:
                    wait_for = min(wait_for, max(0.0, deadline - now))
            if idle:
                # A backoff expiry only matters while a worker is free
                # to take the attempt; with every worker busy the next
                # reply wakes the loop anyway. (Attempts merely queued
                # behind busy workers must NOT clamp the wait to zero —
                # that turns the reply wait into a busy spin.)
                for att in pending:
                    wait_for = min(wait_for, max(0.0, att.ready_at - now))
            chan_slots = {self._channels[slot]: slot for slot in busy}
            ready = connection.wait(list(chan_slots), timeout=wait_for)
            for chan in ready:
                slot = chan_slots[chan]
                att, _deadline = busy.pop(slot)
                try:
                    msg = chan.recv()
                except (EOFError, OSError):
                    self.stats.crashes += 1
                    self._replace(slot)
                    idle.append(slot)
                    fault(
                        att,
                        f"worker died pricing batch {att.batch_id} "
                        f"(attempt {att.attempt + 1})",
                    )
                    continue
                protocol_ok = (
                    isinstance(msg, tuple)
                    and len(msg) == 3
                    and msg[0] == "done"
                    and msg[1] == att.batch_id
                )
                if not protocol_ok:
                    self.stats.poisoned += 1
                    self._replace(slot)
                    idle.append(slot)
                    fault(
                        att,
                        f"poisoned reply pricing batch {att.batch_id}: "
                        f"{type(msg).__name__}",
                    )
                    continue
                idle.append(slot)
                self.stats.completed += 1
                entries = msg[2]
                for index, status, payload in entries:
                    if status == "ok":
                        results[index] = payload
                    else:
                        failures[index] = (points_by_index[index], payload)
                        self.stats.quarantined += 1
                if on_batch is not None:
                    on_batch(att.batch_id, entries)
            # Deadline enforcement on whoever is still out.
            now = time.monotonic()
            for slot in list(busy):
                att, deadline = busy[slot]
                if deadline is not None and now >= deadline:
                    self.stats.timeouts += 1
                    busy.pop(slot)
                    self._replace(slot)
                    idle.append(slot)
                    fault(
                        att,
                        f"batch {att.batch_id} exceeded its "
                        f"{self.retry.batch_timeout}s deadline "
                        f"(attempt {att.attempt + 1})",
                    )
        return results, failures
