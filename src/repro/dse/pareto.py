"""Pareto-front extraction over timing and resource objectives.

The campaign's promotion decisions and its published artifact both rest
on the non-dominated set of the priced grid: a point survives when no
other point is at least as good on *every* minimized objective and
strictly better on one. The domination test is a vectorized sorted
cull — candidates compare against the running front, not all ``n``
rows — so fronts over thousand-point grids cost milliseconds.
"""

from __future__ import annotations

import numpy as np

from ..errors import DSEError
from .tiers import PointResult

#: Default minimized objectives: the per-step cycle count and the three
#: contended fabric resources of the N-CU floorplan.
PARETO_OBJECTIVES = ("step_cycles", "lut", "dsp", "bram36")

#: Rows compared per vectorized block of the sorted cull.
_CHUNK = 256


def pareto_indices(values: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of an ``(n, k)`` objective matrix.

    All objectives minimized. Duplicate rows are all kept (none strictly
    dominates its copies). Indices return in input order, so callers'
    result ordering is deterministic.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.size == 0:
        raise DSEError("pareto_indices needs a non-empty (n, k) matrix")
    # Lexicographic sort puts every dominator before what it dominates
    # (a dominating row is <= everywhere, hence lex-smaller unless the
    # rows are equal — and equal rows never dominate each other). So a
    # single pass over sorted chunks only ever needs to test against the
    # running front plus the chunk itself, turning the naive (n, n, k)
    # comparison into (n, |front|, k) — milliseconds even when thousand-
    # point grids reduce to a few dozen survivors.
    n = len(values)
    order = np.lexsort(values.T[::-1])
    ranked = values[order]
    dominated = np.zeros(n, dtype=bool)
    front = np.empty((0, values.shape[1]))
    for start in range(0, n, _CHUNK):
        block = ranked[start : start + _CHUNK]
        # Dominated by an established front member?
        le_all = (front[None, :, :] <= block[:, None, :]).all(axis=2)
        lt_any = (front[None, :, :] < block[:, None, :]).any(axis=2)
        dead = (le_all & lt_any).any(axis=1)
        # ... or by another row of this chunk (transitivity makes a
        # dominated dominator equivalent to its own dominator).
        le_all = (block[:, None, :] >= block[None, :, :]).all(axis=2)
        lt_any = (block[:, None, :] > block[None, :, :]).any(axis=2)
        dead |= (le_all & lt_any).any(axis=1)
        dominated[order[start : start + _CHUNK]] = dead
        front = np.concatenate([front, block[~dead]])
    return np.flatnonzero(~dominated)


def pareto_front(
    results: list[PointResult],
    objectives: tuple[str, ...] = PARETO_OBJECTIVES,
) -> list[PointResult]:
    """The non-dominated results under the given minimized objectives.

    Returns results in their input order; an empty input yields an
    empty front. Raises :class:`~repro.errors.DSEError` on an unknown
    objective name.
    """
    if not results:
        return []
    if not objectives:
        raise DSEError("pareto_front needs at least one objective")
    for name in objectives:
        if not hasattr(results[0], name):
            raise DSEError(f"unknown Pareto objective {name!r}")
    matrix = np.array(
        [[getattr(r, name) for name in objectives] for r in results]
    )
    return [results[i] for i in pareto_indices(matrix)]
