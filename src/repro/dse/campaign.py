"""Declarative design-space campaigns: points, axes, and expansion.

A :class:`DesignPoint` is one configuration of every architectural and
workload knob the exploration sweeps — polynomial order, mesh size,
streaming block size, compute-unit count, target device, operator-fusion
mode, element-partition strategy, step count, and flow case. A
:class:`CampaignSpec` names the swept axes over a base point and expands
to the full cross-product, separating feasible points from the ones the
device or mesh cannot realize (more CUs than memory-attached SLRs, more
CUs than elements, a periodic mesh below the two-node seam minimum).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace

from ..errors import ConfigurationError, DSEError
from ..fpga.device import DEVICE_REGISTRY
from ..mesh.partition import (
    partition_elements_balanced,
    partition_elements_contiguous,
)
from ..pipeline.navier_stokes import FUSIONS
from ..precision import resolve_dtype

#: Flow cases a point can be priced on: the Taylor-Green vortex on the
#: triply periodic box, and the wall-bounded decaying shear flow on the
#: channel mesh.
CASES = ("tgv", "channel")

#: Element-partition strategies for sharding the stream over CUs.
PARTITIONS = ("balanced", "contiguous")


@dataclass(frozen=True)
class DesignPoint:
    """One coordinate of the design space.

    Attributes
    ----------
    polynomial_order:
        GLL order of the priced element (the paper evaluates 2).
    elements_per_direction:
        Mesh extent per direction; the mesh has
        ``elements_per_direction ** 3`` hex elements.
    block_size:
        Elements per streamed token.
    num_cus:
        RKL compute units the element stream shards over.
    device:
        Device-axis name (:data:`repro.fpga.device.DEVICE_REGISTRY`):
        ``"u200"`` (paper board, 2 memory-attached SLRs) or ``"hbm"``
        (HBM-class, 4).
    fusion:
        Operator-pipeline fusion mode
        (:data:`repro.pipeline.navier_stokes.FUSIONS`).
    partition:
        Element-sharding strategy (:data:`PARTITIONS`).
    num_steps:
        RK time steps of the priced run.
    case:
        Flow case (:data:`CASES`) — fixes periodicity and hence the
        node count of the mesh.
    precision:
        Precision mode of the priced run
        (:data:`repro.precision.DTYPE_MODES`): ``"float64"`` oracle,
        ``"float32"`` device-faithful, or ``"mixed"``
        f32-stream/f64-accumulate. Aliases (``f32``, ``fp64``, ...)
        canonicalize at construction so cache keys stay stable.
    """

    polynomial_order: int = 2
    elements_per_direction: int = 2
    block_size: int = 1
    num_cus: int = 1
    device: str = "u200"
    fusion: str = "full"
    partition: str = "balanced"
    num_steps: int = 1
    case: str = "tgv"
    precision: str = "float64"

    def __post_init__(self) -> None:
        for name in (
            "polynomial_order",
            "elements_per_direction",
            "block_size",
            "num_cus",
            "num_steps",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise DSEError(f"{name} must be an int >= 1, got {value!r}")
        if self.device not in DEVICE_REGISTRY:
            known = ", ".join(sorted(DEVICE_REGISTRY))
            raise DSEError(
                f"unknown device axis value {self.device!r}; known: {known}"
            )
        if self.fusion not in FUSIONS:
            raise DSEError(
                f"fusion must be one of {FUSIONS}, got {self.fusion!r}"
            )
        if self.partition not in PARTITIONS:
            raise DSEError(
                f"partition must be one of {PARTITIONS}, "
                f"got {self.partition!r}"
            )
        if self.case not in CASES:
            raise DSEError(f"case must be one of {CASES}, got {self.case!r}")
        try:
            canonical = resolve_dtype(self.precision)
        except ConfigurationError as exc:
            raise DSEError(str(exc)) from None
        object.__setattr__(self, "precision", canonical)

    # -- derived mesh arithmetic --------------------------------------------

    @property
    def num_elements(self) -> int:
        """Hex elements of the point's mesh."""
        return self.elements_per_direction**3

    @property
    def nodes_per_direction(self) -> int:
        return self.elements_per_direction * self.polynomial_order

    @property
    def num_nodes(self) -> int:
        """Unique mesh nodes: all seams wrap on the periodic box; the
        channel's wall direction keeps its two boundary planes."""
        n = self.nodes_per_direction
        if self.case == "tgv":
            return n**3
        return n * n * (n + 1)

    def spec(self) -> dict:
        """The point as a plain dict — the cache key and BENCH metadata
        form (field order fixed by the dataclass definition)."""
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    # -- feasibility ---------------------------------------------------------

    def infeasibility(self) -> str | None:
        """Why this point cannot be realized, or ``None`` if it can."""
        device = DEVICE_REGISTRY[self.device]
        limit = len(device.ddr_attached_slrs())
        if self.num_cus > limit:
            return (
                f"{self.num_cus} CUs exceed the {limit} memory-attached "
                f"SLRs of {device.name}"
            )
        if self.num_cus > self.num_elements:
            return (
                f"{self.num_cus} CUs need at least one element each; mesh "
                f"has {self.num_elements}"
            )
        if self.nodes_per_direction < 2:
            return (
                "periodic directions need >= 2 nodes per direction "
                f"(got {self.nodes_per_direction})"
            )
        return None

    @property
    def is_feasible(self) -> bool:
        return self.infeasibility() is None

    def element_partitions(self) -> list:
        """Element shards of this point's strategy, one per CU.

        ``"balanced"`` splits near-equally; ``"contiguous"`` cuts
        fixed-size runs (the DDR-burst-friendly split), whose final
        shard may be short. When the fixed-size cut cannot fill every
        CU (its ceil-sized batches exhaust the mesh early), the
        near-equal split — itself contiguous — stands in, so the shard
        count always matches ``num_cus``.
        """
        if self.partition == "contiguous":
            batch = -(-self.num_elements // self.num_cus)  # ceil division
            parts = partition_elements_contiguous(self.num_elements, batch)
            if len(parts) == self.num_cus:
                return parts
        return partition_elements_balanced(self.num_elements, self.num_cus)

    def mesh(self):
        """Build the point's mesh (TGV periodic box or channel)."""
        from ..mesh.hexmesh import channel_mesh, periodic_box_mesh

        build = periodic_box_mesh if self.case == "tgv" else channel_mesh
        return build(self.elements_per_direction, self.polynomial_order)


@dataclass(frozen=True)
class CampaignSpec:
    """A named sweep: axes of values crossed over a base point.

    Attributes
    ----------
    name:
        Campaign identifier (lands in the BENCH artifact).
    axes:
        ``((field_name, (values...)), ...)`` — each field must be a
        :class:`DesignPoint` field; the cross-product is expanded in
        this axis order (last axis fastest), so expansion order is
        deterministic.
    base:
        The point providing every un-swept field.
    max_survivors:
        Pareto-front candidates promoted to the exact tier.
    max_cosim:
        Exact-tier survivors promoted to full co-simulation.
    backend:
        Compute backend for the cosim tier's streamed payloads
        (``None`` defers to ``REPRO_BACKEND``, then the default). The
        executor resolves it once
        (:func:`repro.backend.resolve_backend_name`) and passes it
        explicitly to every finalist evaluation, so the payload
        ``_many`` kernels hit the selected backend's batched forms —
        the timing tiers are backend-invariant (cycles price token
        counts), so only evaluation wall-clock moves.
    cosim_verify:
        Whether the cosim tier also runs the redundant functional
        checking solve per finalist. Off by default: the streamed state
        is bitwise identical either way, and the parity suite audits
        the checked path, so campaigns skip it for speed. Turning it on
        records ``state_max_rel_err`` on each finalist's result.
    """

    name: str
    axes: tuple[tuple[str, tuple], ...]
    base: DesignPoint = DesignPoint()
    max_survivors: int = 8
    max_cosim: int = 4
    backend: str | None = None
    cosim_verify: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise DSEError("campaign needs a name")
        if self.max_survivors < 1 or self.max_cosim < 1:
            raise DSEError("max_survivors and max_cosim must be >= 1")
        if self.backend is not None:
            from ..backend import available_backends

            known = available_backends()
            if str(self.backend).strip().lower() not in known:
                raise DSEError(
                    f"unknown campaign backend {self.backend!r}; "
                    f"available: {', '.join(known)}"
                )
        point_fields = {field.name for field in fields(DesignPoint)}
        seen: set[str] = set()
        for axis_name, values in self.axes:
            if axis_name not in point_fields:
                raise DSEError(
                    f"unknown campaign axis {axis_name!r}; design-point "
                    f"fields: {', '.join(sorted(point_fields))}"
                )
            if axis_name in seen:
                raise DSEError(f"duplicate campaign axis {axis_name!r}")
            if not values:
                raise DSEError(f"campaign axis {axis_name!r} has no values")
            seen.add(axis_name)

    def spec(self) -> dict:
        """The campaign as a plain dict (BENCH metadata form)."""
        return {
            "name": self.name,
            "axes": [[axis, list(values)] for axis, values in self.axes],
            "base": self.base.spec(),
            "max_survivors": self.max_survivors,
            "max_cosim": self.max_cosim,
            "backend": self.backend,
            "cosim_verify": self.cosim_verify,
        }

    def fingerprint(self) -> str:
        """Content identity of the campaign (SHA-256 of :meth:`spec`).

        The checkpoint journal records it so ``resume=True`` refuses to
        splice progress from a *different* sweep into this one.
        """
        from .fingerprint import fingerprint as _fingerprint

        return _fingerprint(self.spec())

    def expand(
        self,
    ) -> tuple[list[DesignPoint], list[tuple[DesignPoint, str]]]:
        """The full grid, split into feasible points and skipped ones.

        Returns ``(points, skipped)`` where ``skipped`` pairs each
        infeasible point with its reason. Raises
        :class:`~repro.errors.DSEError` if the whole grid is
        infeasible.
        """
        names = [axis for axis, _ in self.axes]
        grids = [values for _, values in self.axes]
        points: list[DesignPoint] = []
        skipped: list[tuple[DesignPoint, str]] = []
        for combo in itertools.product(*grids):
            point = replace(self.base, **dict(zip(names, combo)))
            reason = point.infeasibility()
            if reason is None:
                points.append(point)
            else:
                skipped.append((point, reason))
        if not points:
            raise DSEError(
                f"campaign {self.name!r} expands to no feasible points "
                f"({len(skipped)} skipped)"
            )
        return points, skipped
