"""Content-addressed result cache for campaign evaluations.

A cache entry is addressed by the SHA-256 fingerprint
(:mod:`repro.dse.fingerprint`) of everything that determines the
result: the full design point, the evaluation tier, and the cache
schema version. Identity is *content*, so two campaigns (or two
processes, or two sessions) asking for the same configuration share one
entry, and changing any swept parameter — block size, device, fusion,
one float of the mesh arithmetic — misses by construction.

Entries live in memory always and, when a directory is configured, as
one JSON file per key. Disk writes are atomic (temp file in the cache
directory, then :func:`os.replace`), so concurrent writers — the
parallel executor's pool workers all warming the same directory — can
never expose a torn entry: the worst case is the same bytes written
twice.

The cache degrades instead of failing: a corrupted / truncated /
unreadable entry is a **miss** (the bad file is removed, the result
recomputed and rewritten atomically, ``stats.corrupt`` incremented),
and a failed disk write (disk full, permissions) keeps the in-memory
entry, warns, and counts ``stats.write_errors`` — a sick filesystem
slows a campaign down, it never kills it.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from ..errors import DSEError
from ..testing import faults
from .campaign import DesignPoint
from .fingerprint import fingerprint
from .tiers import PointResult, TIERS

#: Bump when the on-disk payload shape changes; part of every key, so a
#: schema change invalidates (rather than misreads) old entries.
#: 2: PointResult grew ``status``/``error`` (quarantined-failure fields).
SCHEMA_VERSION = 2


@lru_cache(maxsize=65536)
def _content_key(point: DesignPoint, tier: str) -> str:
    return fingerprint(
        {"schema": SCHEMA_VERSION, "tier": tier, "point": point.spec()}
    )


def cache_key(point: DesignPoint, tier: str) -> str:
    """The content address of one (point, tier) evaluation.

    Memoized per process: design points are frozen, so a key is a pure
    function of its arguments, and campaigns address the same points
    repeatedly (pre-check, store, warm re-runs).
    """
    if tier not in TIERS:
        raise DSEError(f"unknown tier {tier!r}; tiers: {', '.join(TIERS)}")
    return _content_key(point, tier)


def _served(result: PointResult) -> PointResult:
    """A ``from_cache=True`` copy, cheap enough for the lookup hot path
    (``dataclasses.replace`` re-runs ``__init__`` and costs ~5x more)."""
    clone = copy.copy(result)
    object.__setattr__(clone, "from_cache", True)
    return clone


@dataclass
class CacheStats:
    """Hit/miss/write accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Corrupted / truncated / unreadable on-disk entries served as
    #: misses (each one was removed and will be rewritten).
    corrupt: int = 0
    #: Disk writes that failed (entry kept in memory, warning issued).
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """In-memory + optional on-disk store of :class:`PointResult`.

    Parameters
    ----------
    directory:
        When given, entries persist as ``<key>.json`` files there
        (created on demand), surviving the process and shared across
        concurrent writers; when ``None`` the cache is process-local
        memory only.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict[str, PointResult] = {}
        self._directory: Path | None = None
        self._dir_str = ""
        self.stats = CacheStats()
        if directory is not None:
            path = Path(directory)
            if path.exists() and not path.is_dir():
                raise DSEError(
                    f"cache directory {path} exists and is not a directory"
                )
            path.mkdir(parents=True, exist_ok=True)
            self._directory = path
            self._dir_str = str(path)

    @property
    def directory(self) -> Path | None:
        return self._directory

    def _path(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{key}.json"

    def get(self, key: str) -> PointResult | None:
        """The cached result for a key, or ``None`` (counted as hit/miss).

        Served results carry ``from_cache=True`` so downstream
        accounting (and the bitwise cached-vs-fresh tests) can tell the
        provenance apart while every priced field stays identical.
        """
        result = self._memory.get(key)
        if result is None and self._directory is not None:
            # One open() doubling as the existence probe: a stat-then-read
            # pair costs a second syscall per lookup, and warm campaign
            # re-runs do thousands of these.
            name = os.path.join(self._dir_str, f"{key}.json")
            try:
                with open(name, "r") as handle:
                    payload = json.loads(handle.read())
                if payload is not None:
                    result = _served(PointResult.from_dict(payload))
                    self._memory[key] = result
            except FileNotFoundError:
                pass
            except (OSError, json.JSONDecodeError, DSEError):
                # A corrupted, truncated, or unreadable entry (a torn
                # copy from another filesystem, a crash mid-`cp`, bit
                # rot) is a MISS, not a campaign-killing error: drop the
                # bad file so the recompute rewrites it atomically.
                self.stats.corrupt += 1
                result = None
                try:
                    os.unlink(name)
                except OSError:
                    pass
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result if result.from_cache else _served(result)

    def put(
        self, key: str, result: PointResult, *, persist: bool = True
    ) -> None:
        """Store a result (atomically on disk when configured).

        ``persist=False`` fills only the in-memory layer — the parallel
        executor's merge path uses it when pool workers already wrote
        the entry to the shared directory themselves.
        """
        # The memory layer holds the served (from_cache=True) variant so
        # the lookup hot path returns it without copying; the on-disk
        # payload carries no provenance flag either way.
        self._memory[key] = _served(result)
        self.stats.writes += 1
        if self._directory is None or not persist:
            return
        payload = json.dumps(
            self._memory[key].to_dict(), sort_keys=True, indent=1
        )
        # Atomic publish: readers (and concurrent writers racing on the
        # same key) see either no file or a complete one, never a torn
        # write. A failed write (disk full, permissions) degrades to
        # memory-only: the campaign keeps running, the warning and
        # ``stats.write_errors`` surface the sick filesystem.
        try:
            fired = faults.trip("cache.write", context=key)
            if fired is not None and fired.kind == "truncate":
                payload = payload[: max(1, len(payload) // 3)]
            fd, tmp_name = tempfile.mkstemp(
                dir=self._directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_name, self._path(key))
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.stats.write_errors += 1
            warnings.warn(
                f"cache write failed for {key[:16]}… ({exc}); entry kept "
                "in memory only",
                RuntimeWarning,
                stacklevel=2,
            )

    def lookup(self, point: DesignPoint, tier: str) -> PointResult | None:
        """:meth:`get` keyed by content (:func:`cache_key`)."""
        return self.get(cache_key(point, tier))

    def store(
        self, point: DesignPoint, tier: str, result: PointResult
    ) -> None:
        """:meth:`put` keyed by content (:func:`cache_key`)."""
        self.put(cache_key(point, tier), result)

    def __len__(self) -> int:
        return len(self._memory)
