"""Campaign checkpoint journal: resume a killed sweep where it died.

The content-addressed :class:`~repro.dse.cache.ResultCache` already
persists every *successful* evaluation the moment a worker prices it —
a resumed campaign re-prices none of them. What the cache cannot
record is the rest of a campaign's progress: which batches and tiers
finished, and which points were **quarantined** as failures (a failure
is deliberately never cached — a crashed worker may price the same
point fine after a respawn on the next run). The journal fills that
gap: an append-only JSONL file next to the cache entries, one event
per line, flushed line-by-line so a SIGKILL loses at most the line in
flight.

Events (each a one-line JSON object with an ``"event"`` tag):

``begin``
    Opens a run; carries the campaign fingerprint
    (:meth:`~repro.dse.campaign.CampaignSpec.fingerprint`) so
    ``resume=True`` refuses a journal written by a different sweep.
``batch``
    A supervised-pool batch completed (its results are in the cache).
``failure``
    A point was quarantined; carries the point spec, tier, and error,
    so the resumed campaign's casualty list matches the killed one's.
``tier``
    A whole tier completed.
``end``
    The campaign completed; a resume of a completed campaign is a pure
    cache replay.

Loading is tolerant by construction: a truncated final line (the
SIGKILL case) or trailing garbage is ignored, and everything before it
is honored. A fingerprint mismatch raises
:class:`~repro.errors.CheckpointError` — resuming someone else's
progress would be silent corruption.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CheckpointError
from .campaign import DesignPoint

#: Journal filename inside the cache directory, keyed by campaign
#: fingerprint so concurrent campaigns sharing one cache directory
#: journal independently.
_JOURNAL_TEMPLATE = "journal-{fingerprint}.jsonl"


def journal_path(directory: str | Path, campaign_fingerprint: str) -> Path:
    """Where the journal of one campaign lives inside a cache directory."""
    return Path(directory) / _JOURNAL_TEMPLATE.format(
        fingerprint=campaign_fingerprint[:32]
    )


@dataclass
class JournalState:
    """Everything a tolerant :func:`CampaignJournal.load` recovered."""

    #: Campaign fingerprint of the ``begin`` event ("" for no journal).
    fingerprint: str = ""
    #: Batch ids journaled complete, per tier.
    batches: dict = field(default_factory=dict)
    #: Tiers journaled complete.
    tiers_done: list = field(default_factory=list)
    #: Quarantined points: ``(tier, index) -> (DesignPoint, error)``.
    failures: dict = field(default_factory=dict)
    #: True when an ``end`` event was journaled (campaign completed).
    ended: bool = False

    @property
    def exists(self) -> bool:
        return bool(self.fingerprint)


class CampaignJournal:
    """Append-only JSONL progress journal of one campaign run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None

    # -- writing -------------------------------------------------------------

    def _record(self, event: str, **payload) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        line = json.dumps({"event": event, **payload}, sort_keys=True)
        self._handle.write(line + "\n")
        # Flush per line: a kill -9 loses at most the event in flight,
        # and the tolerant loader shrugs off the torn tail.
        self._handle.flush()

    def begin(self, campaign_fingerprint: str) -> None:
        self._record("begin", fingerprint=campaign_fingerprint)

    def batch_done(self, tier: str, batch_id: int) -> None:
        self._record("batch", tier=tier, batch=batch_id)

    def failure(
        self, tier: str, index: int, point: DesignPoint, error: str
    ) -> None:
        self._record(
            "failure",
            tier=tier,
            index=index,
            point=point.spec(),
            error=error,
        )

    def tier_done(self, tier: str) -> None:
        self._record("tier", tier=tier)

    def end(self) -> None:
        self._record("end")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def discard(self) -> None:
        """Close and delete the journal (a fresh, non-resumed run must
        not inherit a stale one)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- loading -------------------------------------------------------------

    def load(self, expected_fingerprint: str | None = None) -> JournalState:
        """Recover journaled progress, tolerating a torn tail.

        Raises :class:`~repro.errors.CheckpointError` when the journal
        belongs to a different campaign than ``expected_fingerprint``.
        """
        state = JournalState()
        try:
            with open(self.path, "r") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return state
        except OSError as exc:
            raise CheckpointError(
                f"unreadable campaign journal {self.path}: {exc}"
            ) from None
        for line in lines:
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                # The torn tail of a killed writer (or garbage): every
                # complete line before it still counts.
                continue
            if not isinstance(event, dict):
                continue
            tag = event.get("event")
            if tag == "begin":
                state.fingerprint = event.get("fingerprint", "")
            elif tag == "batch":
                state.batches.setdefault(event["tier"], set()).add(
                    event["batch"]
                )
            elif tag == "failure":
                try:
                    point = DesignPoint(**event["point"])
                except Exception:  # noqa: BLE001 - skip unusable lines
                    continue
                state.failures[(event["tier"], event["index"])] = (
                    point,
                    event.get("error", "journaled failure"),
                )
            elif tag == "tier":
                state.tiers_done.append(event["tier"])
            elif tag == "end":
                state.ended = True
        if (
            expected_fingerprint is not None
            and state.exists
            and state.fingerprint != expected_fingerprint
        ):
            raise CheckpointError(
                f"campaign journal {self.path.name} was written by a "
                "different campaign (fingerprint mismatch); refusing to "
                "resume from it"
            )
        return state
