"""repro.dse — design-space exploration over the accelerator models.

The co-simulation stack (PRs 3-5) made one design point cheap to price
at three fidelities; this package makes the *space* cheap to sweep:

- :mod:`repro.dse.campaign` — design points and declarative campaign
  specs (axes crossed over a base point, feasibility filtering);
- :mod:`repro.dse.tiers` — the evaluation ladder: closed-form models
  for the full grid, the exact vectorized schedule solve for Pareto
  survivors, full payload-carrying co-simulation for the finalists,
  with cross-tier agreement bounds;
- :mod:`repro.dse.fingerprint` — stable content fingerprints of
  configuration objects (the cache address and BENCH metadata);
- :mod:`repro.dse.cache` — the content-addressed result cache
  (in-memory + atomic on-disk JSON, hit/miss accounting);
- :mod:`repro.dse.pareto` — vectorized Pareto-front extraction
  (cycles vs LUT/DSP/BRAM);
- :mod:`repro.dse.pool` — the fault-tolerant
  :class:`~repro.dse.pool.SupervisedPool` (dead-worker respawn,
  per-batch deadlines, backoff retries, bisection quarantine) and its
  :class:`~repro.dse.pool.RetryPolicy`;
- :mod:`repro.dse.checkpoint` — the append-only campaign progress
  journal behind ``run_campaign(..., resume=True)``;
- :mod:`repro.dse.executor` — :func:`~repro.dse.executor.run_campaign`
  (supervised sharding, deterministic merge, checkpoint/resume) and
  the asynchronous :class:`~repro.dse.executor.CampaignExecutor`
  (``submit``/``poll``/``collect``/``cancel``, job timeouts).
"""

from .cache import CacheStats, ResultCache, cache_key
from .campaign import CASES, PARTITIONS, CampaignSpec, DesignPoint
from .checkpoint import CampaignJournal, JournalState, journal_path
from .executor import (
    AgreementCheck,
    CampaignExecutor,
    CampaignResult,
    run_campaign,
)
from .pool import PoolStats, RetryPolicy, SupervisedPool
from .fingerprint import canonicalize, fingerprint
from .pareto import PARETO_OBJECTIVES, pareto_front, pareto_indices
from .tiers import (
    TIER_AGREEMENT_BOUNDS,
    TIERS,
    PointResult,
    design_for,
    evaluate_closed_form,
    evaluate_cosim,
    evaluate_exact,
    evaluate_point,
    prewarm_designs,
    tier_agreement,
)

__all__ = [
    "CASES",
    "PARTITIONS",
    "CampaignSpec",
    "DesignPoint",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "AgreementCheck",
    "CampaignExecutor",
    "CampaignJournal",
    "CampaignResult",
    "JournalState",
    "PoolStats",
    "RetryPolicy",
    "SupervisedPool",
    "journal_path",
    "run_campaign",
    "canonicalize",
    "fingerprint",
    "PARETO_OBJECTIVES",
    "pareto_front",
    "pareto_indices",
    "TIERS",
    "TIER_AGREEMENT_BOUNDS",
    "PointResult",
    "design_for",
    "evaluate_closed_form",
    "evaluate_cosim",
    "evaluate_exact",
    "evaluate_point",
    "prewarm_designs",
    "tier_agreement",
]
