"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystem-specific subclasses let
tests and tools discriminate failure modes precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


#: Short alias used throughout docs and tests.
ConfigError = ConfigurationError


class MeshError(ReproError):
    """Mesh construction or validation failed."""


class FEMError(ReproError):
    """Finite-element machinery (basis, quadrature, assembly) failed."""


class BackendError(ReproError):
    """A kernel backend failed at runtime (e.g. a parallel pool worker
    died or reported an error)."""


class PhysicsError(ReproError):
    """A physical state is invalid (negative density, pressure, ...)."""


class TimeIntegrationError(ReproError):
    """Time integration failed (bad tableau, unstable step, ...)."""


class SolverError(ReproError):
    """The Navier-Stokes solver failed or diverged."""


class PipelineError(ReproError):
    """An operator pipeline (stage graph IR) is malformed or cannot be
    executed/rewritten as requested."""


class DataflowError(ReproError):
    """A dataflow graph is malformed or its simulation failed."""


class DataflowValidationError(DataflowError):
    """A dataflow graph violates a structural rule.

    The paper (Section III-B) requires the Single-Producer-Single-Consumer
    rule and forbids inter-task buffers that bypass tasks; violations are
    reported with this error.
    """


class DeadlockError(DataflowError):
    """The cycle-level dataflow simulation detected a deadlock."""


class HLSError(ReproError):
    """HLS scheduling, binding, or resource estimation failed."""


class DirectiveError(HLSError):
    """An HLS directive is invalid for the loop or array it targets."""


class ResourceError(HLSError):
    """A design exceeds the resources of its target region or device."""


class FPGAError(ReproError):
    """Device-model level failure (floorplan, memory system, power)."""


class FloorplanError(FPGAError):
    """Kernels cannot be legally placed onto SLRs."""


class CalibrationError(ReproError):
    """A calibrated model constant is out of its documented valid range."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""


class DSEError(ReproError):
    """A design-space-exploration campaign is misconfigured or failed
    (invalid design point, empty grid, unknown tier, cache misuse)."""


class CampaignCancelled(DSEError):
    """A campaign was cancelled before completion — an executor
    ``cancel()``, a job deadline, or a cancel event handed to
    :func:`repro.dse.run_campaign`."""


class CheckpointError(DSEError):
    """A campaign checkpoint journal cannot be used for the requested
    resume (wrong campaign fingerprint, unusable journal path)."""
