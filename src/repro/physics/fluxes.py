"""Convective and viscous flux vectors of the compressible NS equations.

The paper splits the right-hand side into a **Convection** term
``C(x) = div f(x)`` and a **Diffusion** term ``D(x) = -div(lambda grad x)``
(Section II-B); the two are computed by separate COMPUTE stages that the
accelerator merges into one module. This module provides the *pointwise*
fluxes whose weak divergences those stages accumulate:

Convective (Euler) fluxes
    mass:      ``F = rho u``
    momentum:  ``F_ij = rho u_i u_j + p delta_ij``
    energy:    ``F = (E + p) u``

Viscous (diffusion) fluxes
    momentum:  ``F = tau``
    energy:    ``F = tau . u + kappa grad T``

All functions are shape-polymorphic over the node axis: inputs carry
shape ``(..., N)`` per component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicsError
from .gas import GasProperties
from .viscous import stress_tensor
from .workspace import WorkspacePool


@dataclass
class FluxSet:
    """Physical flux vectors for the five conserved equations.

    Attributes
    ----------
    mass:
        ``(..., 3)`` mass flux.
    momentum:
        ``(..., 3, 3)``; ``momentum[..., i, j]`` is the j-direction flux of
        the i-momentum.
    energy:
        ``(..., 3)`` energy flux.
    """

    mass: np.ndarray
    momentum: np.ndarray
    energy: np.ndarray

    def stacked(self) -> np.ndarray:
        """Pack into ``(5, ..., 3)`` ordered (rho, mx, my, mz, E)."""
        parts = [self.mass[None]] + [
            self.momentum[..., i, :][None] for i in range(3)
        ]
        parts.append(self.energy[None])
        return np.concatenate(parts, axis=0)


def convective_fluxes(
    rho: np.ndarray,
    velocity: np.ndarray,
    pressure: np.ndarray,
    total_energy: np.ndarray,
    pool: WorkspacePool | None = None,
) -> FluxSet:
    """Euler fluxes of the conserved variables.

    ``velocity`` has shape ``(3, ...)`` (component-major, like
    :meth:`repro.physics.FlowState.velocity`); the per-node flux arrays put
    the direction axis *last* so they feed
    :func:`repro.fem.operators.weak_divergence` directly.

    ``pool`` routes every temporary (and the returned flux arrays)
    through reused workspaces; the operations and their association are
    unchanged, so the values are bitwise those of the unpooled path.
    """
    rho = np.asarray(rho)
    velocity = np.asarray(velocity)
    pressure = np.asarray(pressure)
    total_energy = np.asarray(total_energy)
    if velocity.shape[0] != 3:
        raise PhysicsError(f"velocity must be (3, ...), got {velocity.shape}")

    u_last = np.moveaxis(velocity, 0, -1)  # (..., 3)
    idx = np.arange(3)
    if pool is None:
        mass = rho[..., None] * u_last
        # momentum[..., i, j] = rho u_i u_j + p delta_ij
        momentum = (
            rho[..., None, None] * u_last[..., :, None] * u_last[..., None, :]
        )
        momentum[..., idx, idx] += pressure[..., None]
        energy = (total_energy + pressure)[..., None] * u_last
        return FluxSet(mass=mass, momentum=momentum, energy=energy)

    dtype = u_last.dtype
    mass = pool.get("conv.mass", u_last.shape, dtype)
    np.multiply(rho[..., None], u_last, out=mass)
    # momentum[..., i, j] = rho u_i u_j + p delta_ij, associated exactly
    # as the unpooled expression: (rho * u_i) * u_j.
    rho_u = pool.get("conv.rho_u", u_last.shape + (1,), dtype)
    np.multiply(rho[..., None, None], u_last[..., :, None], out=rho_u)
    momentum = pool.get("conv.momentum", u_last.shape + (3,), dtype)
    np.multiply(rho_u, u_last[..., None, :], out=momentum)
    momentum[..., idx, idx] += pressure[..., None]
    e_plus_p = pool.get("conv.e_plus_p", total_energy.shape, dtype)
    np.add(total_energy, pressure, out=e_plus_p)
    energy = pool.get("conv.energy", u_last.shape, dtype)
    np.multiply(e_plus_p[..., None], u_last, out=energy)
    return FluxSet(mass=mass, momentum=momentum, energy=energy)


def viscous_fluxes(
    velocity: np.ndarray,
    grad_u: np.ndarray,
    grad_t: np.ndarray,
    gas: GasProperties,
    pool: WorkspacePool | None = None,
) -> FluxSet:
    """Viscous + heat-conduction fluxes.

    Parameters
    ----------
    velocity:
        ``(3, ...)`` velocity.
    grad_u:
        ``(..., 3, 3)`` velocity gradient, ``du_i/dx_j``.
    grad_t:
        ``(..., 3)`` temperature gradient.

    Notes
    -----
    The mass equation has no viscous flux (zeros returned); momentum
    diffuses with ``tau`` and energy with ``tau . u + kappa grad T``.
    """
    velocity = np.asarray(velocity)
    grad_u = np.asarray(grad_u)
    grad_t = np.asarray(grad_t)
    if velocity.shape[0] != 3:
        raise PhysicsError(f"velocity must be (3, ...), got {velocity.shape}")
    tau = stress_tensor(grad_u, gas.viscosity, pool)
    u_last = np.moveaxis(velocity, 0, -1)
    if pool is None:
        energy = (
            np.einsum("...ij,...j->...i", tau, u_last)
            + gas.thermal_conductivity * grad_t
        )
        mass = np.zeros_like(u_last)
    else:
        # energy = einsum(tau, u) + kappa * grad_t with the einsum term
        # as the in-place left operand — same association as above.
        energy = pool.get("visc.energy", u_last.shape, u_last.dtype)
        np.einsum("...ij,...j->...i", tau, u_last, out=energy)
        kappa_gt = pool.get("visc.kappa_gt", grad_t.shape, grad_t.dtype)
        np.multiply(gas.thermal_conductivity, grad_t, out=kappa_gt)
        energy += kappa_gt
        mass = pool.zeros("visc.mass", u_last.shape, u_last.dtype)
    return FluxSet(mass=mass, momentum=tau, energy=energy)


def combined_rhs_fluxes(
    convective: FluxSet,
    viscous: FluxSet,
    pool: WorkspacePool | None = None,
) -> FluxSet:
    """Net flux whose (weak) divergence is the conservative-form RHS.

    Writing each equation as ``dq/dt + div(F_c - F_v) = 0``, the net flux
    is ``F_c - F_v``; the solver takes one weak divergence of this
    combination per conserved field.
    """
    if pool is None:
        return FluxSet(
            mass=convective.mass - viscous.mass,
            momentum=convective.momentum - viscous.momentum,
            energy=convective.energy - viscous.energy,
        )
    mass = pool.get("comb.mass", convective.mass.shape, convective.mass.dtype)
    np.subtract(convective.mass, viscous.mass, out=mass)
    momentum = pool.get(
        "comb.momentum", convective.momentum.shape, convective.momentum.dtype
    )
    np.subtract(convective.momentum, viscous.momentum, out=momentum)
    energy = pool.get(
        "comb.energy", convective.energy.shape, convective.energy.dtype
    )
    np.subtract(convective.energy, viscous.energy, out=energy)
    return FluxSet(mass=mass, momentum=momentum, energy=energy)
