"""The Taylor-Green Vortex (TGV) problem (paper Section II-A).

The paper solves the compressible Navier-Stokes equations "using the
initial and boundary conditions defined by the Taylor-Green Vortex
problem" (DeBonis 2013 / SOD2D setup): a triply periodic cube seeded with
a smooth vortex array that transitions to turbulence and decays.

This module provides:

- :class:`TGVCase` — the nondimensional parameters (Mach, Reynolds) plus
  the implied :class:`~repro.physics.gas.GasProperties`;
- :func:`taylor_green_initial` — the standard compressible TGV initial
  condition;
- :func:`taylor_green_2d_exact` — the *exact* incompressible 2D
  Taylor-Green solution, the analytic yardstick used by the validation
  tests in the low-Mach limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicsError
from .gas import GasProperties
from .state import FlowState


@dataclass(frozen=True)
class TGVCase:
    """Nondimensional definition of a Taylor-Green Vortex run.

    The reference scales are ``L`` (vortex wavelength / 2*pi of the box),
    ``V0`` (peak velocity) and ``rho0``. Mach and Reynolds numbers then fix
    the gas state and viscosity:

    - ``c0 = V0 / mach``, ``T0 = c0^2 / (gamma R)``, ``p0 = rho0 R T0``;
    - ``mu = rho0 V0 L / reynolds``.
    """

    mach: float = 0.1
    reynolds: float = 1600.0
    length: float = 1.0
    velocity: float = 1.0
    rho0: float = 1.0
    gamma: float = 1.4
    gas_constant: float = 287.0
    prandtl: float = 0.71

    def __post_init__(self) -> None:
        if self.mach <= 0 or self.mach >= 1:
            raise PhysicsError("TGV requires subsonic Mach in (0, 1)")
        if self.reynolds <= 0:
            raise PhysicsError("reynolds must be positive")
        if min(self.length, self.velocity, self.rho0) <= 0:
            raise PhysicsError("length, velocity and rho0 must be positive")

    @property
    def sound_speed0(self) -> float:
        """Reference sound speed ``c0 = V0 / Ma``."""
        return self.velocity / self.mach

    @property
    def temperature0(self) -> float:
        """Reference temperature consistent with ``c0``."""
        return self.sound_speed0**2 / (self.gamma * self.gas_constant)

    @property
    def pressure0(self) -> float:
        """Reference thermodynamic pressure."""
        return self.rho0 * self.gas_constant * self.temperature0

    @property
    def viscosity(self) -> float:
        """Dynamic viscosity implied by the Reynolds number."""
        return self.rho0 * self.velocity * self.length / self.reynolds

    @property
    def convective_time(self) -> float:
        """One convective time unit ``L / V0``."""
        return self.length / self.velocity

    def gas(self) -> GasProperties:
        """Gas properties carried by this case."""
        return GasProperties(
            gamma=self.gamma,
            gas_constant=self.gas_constant,
            viscosity=self.viscosity,
            prandtl=self.prandtl,
        )


DEFAULT_TGV = TGVCase()


def taylor_green_initial(coords: np.ndarray, case: TGVCase = DEFAULT_TGV) -> FlowState:
    """Compressible TGV initial condition at the given nodes.

    ``coords`` is ``(N, 3)``. The velocity field is the classical vortex
    array; the pressure field is the standard compressible perturbation
    (DeBonis 2013); density follows from the ideal-gas law at uniform
    initial temperature ``T0`` (the "isothermal" TGV start).
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise PhysicsError(f"coords must be (N, 3), got {coords.shape}")
    x = coords[:, 0] / case.length
    y = coords[:, 1] / case.length
    z = coords[:, 2] / case.length
    v0 = case.velocity

    u = v0 * np.sin(x) * np.cos(y) * np.cos(z)
    v = -v0 * np.cos(x) * np.sin(y) * np.cos(z)
    w = np.zeros_like(u)
    velocity = np.stack([u, v, w], axis=0)

    pressure = case.pressure0 + (case.rho0 * v0**2 / 16.0) * (
        np.cos(2 * x) + np.cos(2 * y)
    ) * (np.cos(2 * z) + 2.0)
    gas = case.gas()
    rho = pressure / (gas.gas_constant * case.temperature0)
    temperature = np.full_like(rho, case.temperature0)
    return FlowState.from_primitive(rho, velocity, temperature, gas)


def taylor_green_2d_exact(
    coords: np.ndarray, time: float, case: TGVCase = DEFAULT_TGV
) -> tuple[np.ndarray, np.ndarray]:
    """Exact incompressible 2D Taylor-Green solution, embedded in 3D.

    Returns ``(velocity, pressure_perturbation)`` where velocity has shape
    ``(3, N)`` (w = 0 and no z-dependence) and the pressure perturbation is
    relative to the thermodynamic background:

    ``u =  V0 sin x cos y exp(-2 nu t / L^2)``
    ``v = -V0 cos x sin y exp(-2 nu t / L^2)``
    ``p' = (rho0 V0^2 / 4)(cos 2x + cos 2y) exp(-4 nu t / L^2)``

    At low Mach the compressible solver must track this decay — the
    primary analytic validation of the solver substrate.
    """
    coords = np.asarray(coords, dtype=np.float64)
    nu = case.viscosity / case.rho0
    x = coords[:, 0] / case.length
    y = coords[:, 1] / case.length
    decay = np.exp(-2.0 * nu * time / case.length**2)
    u = case.velocity * np.sin(x) * np.cos(y) * decay
    v = -case.velocity * np.cos(x) * np.sin(y) * decay
    w = np.zeros_like(u)
    p_pert = (
        (case.rho0 * case.velocity**2 / 4.0)
        * (np.cos(2 * x) + np.cos(2 * y))
        * decay**2
    )
    return np.stack([u, v, w], axis=0), p_pert


def taylor_green_2d_initial(
    coords: np.ndarray, case: TGVCase = DEFAULT_TGV
) -> FlowState:
    """Compressible state matching the 2D exact solution at ``t = 0``.

    Density is set from the exact pressure field at uniform temperature,
    giving a consistent low-Mach initialization.
    """
    velocity, p_pert = taylor_green_2d_exact(coords, 0.0, case)
    gas = case.gas()
    pressure = case.pressure0 + p_pert
    rho = pressure / (gas.gas_constant * case.temperature0)
    temperature = np.full_like(rho, case.temperature0)
    return FlowState.from_primitive(rho, velocity, temperature, gas)
