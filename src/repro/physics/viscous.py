"""Newtonian viscous stress tensor (the ``tau`` of paper Fig. 1).

``tau = mu (grad u + grad u^T) - (2/3) mu (div u) I`` — the compressible
Newtonian stress with Stokes' hypothesis. The COMPUTE-tau node stage of
the accelerator evaluates exactly these nine components per node.
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicsError
from .workspace import WorkspacePool


def stress_tensor(
    grad_u: np.ndarray,
    viscosity: float,
    pool: WorkspacePool | None = None,
) -> np.ndarray:
    """Viscous stress from the velocity gradient.

    Parameters
    ----------
    grad_u:
        ``(..., 3, 3)`` with ``grad_u[..., i, j] = du_i / dx_j``.
    viscosity:
        Dynamic viscosity ``mu``.
    pool:
        Optional workspace pool; when given, the symmetrized gradient
        and the returned tensor live in reused buffers (same operations,
        bitwise-identical values — the caller must consume the result
        before its next same-shape call).

    Returns
    -------
    ``(..., 3, 3)`` symmetric stress tensor.
    """
    grad_u = np.asarray(grad_u)
    if grad_u.shape[-2:] != (3, 3):
        raise PhysicsError(f"grad_u must end in (3, 3), got {grad_u.shape}")
    div_u = np.trace(grad_u, axis1=-2, axis2=-1)
    if pool is None:
        sym = grad_u + np.swapaxes(grad_u, -1, -2)
        tau = viscosity * sym
    else:
        sym = pool.get("viscous.sym", grad_u.shape, grad_u.dtype)
        np.add(grad_u, np.swapaxes(grad_u, -1, -2), out=sym)
        tau = pool.get("viscous.tau", grad_u.shape, grad_u.dtype)
        np.multiply(viscosity, sym, out=tau)
    idx = np.arange(3)
    tau[..., idx, idx] -= (2.0 / 3.0) * viscosity * div_u[..., None]
    return tau


def viscous_dissipation(grad_u: np.ndarray, viscosity: float) -> np.ndarray:
    """Pointwise viscous dissipation ``Phi = tau : grad u`` (>= 0).

    Used by the energy-budget validation tests: the kinetic energy lost by
    the resolved field must match the integral of ``Phi`` for low-Mach TGV.
    """
    tau = stress_tensor(grad_u, viscosity)
    return np.einsum("...ij,...ij->...", tau, np.asarray(grad_u))


def strain_rate(grad_u: np.ndarray) -> np.ndarray:
    """Symmetric strain-rate tensor ``S = (grad u + grad u^T) / 2``."""
    grad_u = np.asarray(grad_u)
    if grad_u.shape[-2:] != (3, 3):
        raise PhysicsError(f"grad_u must end in (3, 3), got {grad_u.shape}")
    return 0.5 * (grad_u + np.swapaxes(grad_u, -1, -2))


#: Sutherland-law constants for air (reference viscosity at T_ref and
#: the Sutherland temperature), White, *Viscous Fluid Flow*.
SUTHERLAND_MU_REF = 1.716e-5
SUTHERLAND_T_REF = 273.15
SUTHERLAND_S = 110.4


def sutherland_viscosity(
    temperature: np.ndarray,
    mu_ref: float = SUTHERLAND_MU_REF,
    t_ref: float = SUTHERLAND_T_REF,
    s: float = SUTHERLAND_S,
) -> np.ndarray:
    """Temperature-dependent viscosity via Sutherland's law.

    ``mu(T) = mu_ref (T / T_ref)^{3/2} (T_ref + S) / (T + S)``.

    The paper's TGV runs use a constant ``mu`` (the Fig. 4 snippet still
    streams a ``mu_fluid`` array per node, which is how a
    temperature-dependent law would reach the accelerator); this
    extension provides that law for variable-viscosity studies.
    """
    temperature = np.asarray(temperature, dtype=np.float64)
    if np.any(temperature <= 0):
        raise PhysicsError("temperature must be positive for Sutherland law")
    if mu_ref <= 0 or t_ref <= 0 or s <= 0:
        raise PhysicsError("Sutherland constants must be positive")
    return (
        mu_ref * (temperature / t_ref) ** 1.5 * (t_ref + s) / (temperature + s)
    )


def vorticity(grad_u: np.ndarray) -> np.ndarray:
    """Vorticity vector ``omega = curl u`` from the velocity gradient.

    ``grad_u[..., i, j] = du_i/dx_j``; returns ``(..., 3)``.
    """
    grad_u = np.asarray(grad_u)
    if grad_u.shape[-2:] != (3, 3):
        raise PhysicsError(f"grad_u must end in (3, 3), got {grad_u.shape}")
    wx = grad_u[..., 2, 1] - grad_u[..., 1, 2]
    wy = grad_u[..., 0, 2] - grad_u[..., 2, 0]
    wz = grad_u[..., 1, 0] - grad_u[..., 0, 1]
    return np.stack([wx, wy, wz], axis=-1)
