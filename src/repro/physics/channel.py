"""Wall-bounded decaying shear flow — the channel validation case.

A unidirectional shear layer ``u(z) = U0 sin(pi z / H)`` between no-slip
walls at ``z = 0`` and ``z = H`` is an *exact* Navier-Stokes solution in
the incompressible limit: the convective term vanishes identically
(``u`` depends only on ``z`` and points along ``x``), leaving the pure
diffusion problem

``du/dt = nu d2u/dz2``  ->  ``u(z, t) = U0 sin(pi z / H) exp(-nu (pi/H)^2 t)``.

At low Mach the compressible solver with strongly enforced isothermal
no-slip walls must reproduce this decay — the analytic anchor for the
wall-boundary code path (the paper's FEM motivation: geometries beyond
periodic boxes).
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicsError
from .state import FlowState
from .taylor_green import TGVCase


def _channel_height(domain: tuple[tuple[float, float], ...]) -> float:
    lo, hi = domain[2]
    height = hi - lo
    if height <= 0:
        raise PhysicsError("channel height must be positive")
    return height


def decaying_shear_exact(
    coords: np.ndarray,
    time: float,
    case: TGVCase,
    domain: tuple[tuple[float, float], ...] = ((0.0, 2 * np.pi),) * 3,
) -> np.ndarray:
    """Exact velocity ``(3, N)`` of the decaying shear flow at ``time``."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise PhysicsError(f"coords must be (N, 3), got {coords.shape}")
    height = _channel_height(domain)
    z0 = domain[2][0]
    nu = case.viscosity / case.rho0
    k = np.pi / height
    decay = np.exp(-nu * k**2 * time)
    u = case.velocity * np.sin(k * (coords[:, 2] - z0)) * decay
    return np.stack([u, np.zeros_like(u), np.zeros_like(u)], axis=0)


def decaying_shear_initial(
    coords: np.ndarray,
    case: TGVCase,
    domain: tuple[tuple[float, float], ...] = ((0.0, 2 * np.pi),) * 3,
) -> FlowState:
    """Initial compressible state of the shear flow.

    Uniform density and temperature; the shear velocity satisfies the
    no-slip walls exactly at ``t = 0``.
    """
    velocity = decaying_shear_exact(coords, 0.0, case, domain)
    gas = case.gas()
    n = coords.shape[0]
    rho = np.full(n, case.rho0)
    temperature = np.full(n, case.temperature0)
    return FlowState.from_primitive(rho, velocity, temperature, gas)


def shear_decay_rate(case: TGVCase, height: float = 2 * np.pi) -> float:
    """Analytic decay rate ``nu (pi / H)^2`` of the fundamental mode."""
    if height <= 0:
        raise PhysicsError("height must be positive")
    nu = case.viscosity / case.rho0
    return nu * (np.pi / height) ** 2
