"""The flow state container.

The solver advances the conservative variables ``(rho, rho*u, E)`` (with
``E`` the total energy per unit volume). After each RK step the paper's
RKU kernel re-evaluates the primitive set ``rho, u, T, E, p`` — mirrored
here by the derived-quantity methods, which are exactly the computations
assigned to the RKU kernel's update loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicsError
from .gas import GasProperties

#: Number of conserved scalar fields (rho, 3 momentum, energy).
NUM_CONSERVED = 5


@dataclass
class FlowState:
    """Conservative flow variables on a set of nodes.

    Attributes
    ----------
    rho:
        ``(N,)`` density.
    momentum:
        ``(3, N)`` momentum density ``rho * u``.
    total_energy:
        ``(N,)`` total energy per unit volume
        ``E = rho * (cv * T + |u|^2 / 2)``.
    """

    rho: np.ndarray
    momentum: np.ndarray
    total_energy: np.ndarray

    def __post_init__(self) -> None:
        self.rho = np.asarray(self.rho, dtype=np.float64)
        self.momentum = np.asarray(self.momentum, dtype=np.float64)
        self.total_energy = np.asarray(self.total_energy, dtype=np.float64)
        n = self.rho.shape
        if self.momentum.shape != (3,) + n:
            raise PhysicsError(
                f"momentum shape {self.momentum.shape} incompatible with rho {n}"
            )
        if self.total_energy.shape != n:
            raise PhysicsError(
                f"total_energy shape {self.total_energy.shape} incompatible with rho {n}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_primitive(
        cls,
        rho: np.ndarray,
        velocity: np.ndarray,
        temperature: np.ndarray,
        gas: GasProperties,
    ) -> "FlowState":
        """Build a state from density, velocity ``(3, N)``, temperature."""
        rho = np.asarray(rho, dtype=np.float64)
        velocity = np.asarray(velocity, dtype=np.float64)
        temperature = np.asarray(temperature, dtype=np.float64)
        if np.any(rho <= 0):
            raise PhysicsError("density must be positive")
        if np.any(temperature <= 0):
            raise PhysicsError("temperature must be positive")
        kinetic = 0.5 * np.sum(velocity**2, axis=0)
        total_energy = rho * (gas.internal_energy(temperature) + kinetic)
        return cls(
            rho=rho, momentum=rho[None, :] * velocity, total_energy=total_energy
        )

    @classmethod
    def zeros(cls, num_nodes: int) -> "FlowState":
        """All-zero state (useful as an accumulator)."""
        return cls(
            rho=np.zeros(num_nodes),
            momentum=np.zeros((3, num_nodes)),
            total_energy=np.zeros(num_nodes),
        )

    # -- derived quantities (the RKU kernel's update set) --------------------

    @property
    def num_nodes(self) -> int:
        return int(self.rho.shape[-1])

    def velocity(self) -> np.ndarray:
        """Velocity ``u = momentum / rho``, shape ``(3, N)``."""
        return self.momentum / self.rho[None, :]

    def kinetic_energy_density(self) -> np.ndarray:
        """``rho |u|^2 / 2`` per node."""
        return 0.5 * np.sum(self.momentum**2, axis=0) / self.rho

    def internal_energy_density(self) -> np.ndarray:
        """``rho * e`` per node."""
        return self.total_energy - self.kinetic_energy_density()

    def temperature(self, gas: GasProperties) -> np.ndarray:
        """Temperature from the ideal-gas internal energy."""
        return gas.temperature_from_internal_energy(
            self.internal_energy_density() / self.rho
        )

    def pressure(self, gas: GasProperties) -> np.ndarray:
        """Ideal-gas pressure ``p = (gamma - 1) * rho * e``."""
        return (gas.gamma - 1.0) * self.internal_energy_density()

    def sound_speed(self, gas: GasProperties) -> np.ndarray:
        """Local speed of sound."""
        return gas.sound_speed(self.temperature(gas))

    def max_wave_speed(self, gas: GasProperties) -> float:
        """``max(|u| + c)`` over all nodes — the CFL signal speed."""
        speed = np.sqrt(np.sum(self.velocity() ** 2, axis=0))
        return float(np.max(speed + self.sound_speed(gas)))

    def validate(self) -> None:
        """Raise :class:`PhysicsError` if the state is unphysical."""
        if not np.all(np.isfinite(self.rho)):
            raise PhysicsError("non-finite density")
        if not np.all(np.isfinite(self.momentum)):
            raise PhysicsError("non-finite momentum")
        if not np.all(np.isfinite(self.total_energy)):
            raise PhysicsError("non-finite total energy")
        if np.any(self.rho <= 0):
            raise PhysicsError("non-positive density")
        if np.any(self.internal_energy_density() <= 0):
            raise PhysicsError("non-positive internal energy (negative pressure)")

    # -- arithmetic used by the RK integrator --------------------------------

    def copy(self) -> "FlowState":
        """Deep copy."""
        return FlowState(
            rho=self.rho.copy(),
            momentum=self.momentum.copy(),
            total_energy=self.total_energy.copy(),
        )

    def as_stacked(self) -> np.ndarray:
        """Pack into a ``(5, N)`` array ordered (rho, mx, my, mz, E)."""
        return np.vstack(
            [self.rho[None, :], self.momentum, self.total_energy[None, :]]
        )

    @classmethod
    def from_stacked(cls, stacked: np.ndarray) -> "FlowState":
        """Inverse of :meth:`as_stacked`."""
        stacked = np.asarray(stacked, dtype=np.float64)
        if stacked.ndim != 2 or stacked.shape[0] != NUM_CONSERVED:
            raise PhysicsError(f"stacked state must be (5, N), got {stacked.shape}")
        return cls(
            rho=stacked[0].copy(),
            momentum=stacked[1:4].copy(),
            total_energy=stacked[4].copy(),
        )
