"""Ideal-gas constitutive relations (paper Section II-A).

Total energy ``E`` and pressure ``p`` relate to the solved variables
(density, velocity, temperature) through the ideal-gas law; the fluid has
constant dynamic viscosity ``mu`` and constant Prandtl number, so the
thermal conductivity is ``kappa = cp * mu / Pr``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicsError


@dataclass(frozen=True)
class GasProperties:
    """Thermodynamic and transport properties of the working fluid.

    Attributes
    ----------
    gamma:
        Ratio of specific heats (1.4 for air).
    gas_constant:
        Specific gas constant ``R`` so that ``p = rho * R * T``.
    viscosity:
        Constant dynamic viscosity ``mu``.
    prandtl:
        Prandtl number ``Pr = cp * mu / kappa``.
    """

    gamma: float = 1.4
    gas_constant: float = 287.0
    viscosity: float = 1.0 / 1600.0
    prandtl: float = 0.71

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise PhysicsError(f"gamma must exceed 1, got {self.gamma}")
        if self.gas_constant <= 0.0:
            raise PhysicsError("gas_constant must be positive")
        if self.viscosity < 0.0:
            raise PhysicsError("viscosity must be non-negative")
        if self.prandtl <= 0.0:
            raise PhysicsError("prandtl must be positive")

    @property
    def cv(self) -> float:
        """Specific heat at constant volume."""
        return self.gas_constant / (self.gamma - 1.0)

    @property
    def cp(self) -> float:
        """Specific heat at constant pressure."""
        return self.gamma * self.cv

    @property
    def thermal_conductivity(self) -> float:
        """Fourier conductivity ``kappa = cp * mu / Pr``."""
        return self.cp * self.viscosity / self.prandtl

    # -- constitutive relations (shape-polymorphic) -------------------------

    def pressure(self, rho: np.ndarray, temperature: np.ndarray) -> np.ndarray:
        """Ideal-gas pressure ``p = rho R T``."""
        return rho * self.gas_constant * temperature

    def temperature_from_pressure(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """Invert the ideal-gas law for temperature."""
        return p / (rho * self.gas_constant)

    def internal_energy(self, temperature: np.ndarray) -> np.ndarray:
        """Specific internal energy ``e = cv T``."""
        return self.cv * temperature

    def temperature_from_internal_energy(self, e: np.ndarray) -> np.ndarray:
        """Invert ``e = cv T``."""
        return e / self.cv

    def sound_speed(self, temperature: np.ndarray) -> np.ndarray:
        """Speed of sound ``c = sqrt(gamma R T)``."""
        temperature = np.asarray(temperature)
        if np.any(temperature <= 0):
            raise PhysicsError("temperature must be positive for sound speed")
        return np.sqrt(self.gamma * self.gas_constant * temperature)
