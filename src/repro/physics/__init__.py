"""Compressible-flow physics: constitutive laws, fluxes, the TGV case.

Implements the continuous physics of the paper's Section II-A — the 3D
compressible Navier-Stokes equations (mass, momentum, energy) closed by
the ideal-gas law, a Newtonian viscous stress tensor and Fourier heat
conduction — plus the Taylor-Green Vortex initial/boundary conditions
used for evaluation, and the diagnostics (kinetic energy, enstrophy,
dissipation) used to validate the solver substrate.
"""

from .gas import GasProperties
from .state import FlowState
from .viscous import stress_tensor, viscous_dissipation
from .fluxes import convective_fluxes, viscous_fluxes, FluxSet
from .workspace import WorkspacePool
from .taylor_green import (
    TGVCase,
    taylor_green_initial,
    taylor_green_2d_exact,
    DEFAULT_TGV,
)
from .diagnostics import (
    volume_average,
    kinetic_energy,
    enstrophy,
    total_mass,
    dissipation_rate_from_enstrophy,
)

__all__ = [
    "WorkspacePool",
    "GasProperties",
    "FlowState",
    "stress_tensor",
    "viscous_dissipation",
    "convective_fluxes",
    "viscous_fluxes",
    "FluxSet",
    "TGVCase",
    "taylor_green_initial",
    "taylor_green_2d_exact",
    "DEFAULT_TGV",
    "volume_average",
    "kinetic_energy",
    "enstrophy",
    "total_mass",
    "dissipation_rate_from_enstrophy",
]
