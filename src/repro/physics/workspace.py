"""Reusable per-stage workspaces for the pointwise physics kernels.

Every RK stage recomputes the same flux temporaries — the momentum
outer product, the symmetrized velocity gradient, the stress tensor —
at the same shapes, and under the streaming co-simulation the same
shapes recur once per block token per stage per step. Allocating them
fresh each call costs a page-faulting ``malloc`` per temporary in the
hottest loop of the solver. A :class:`WorkspacePool` keeps one buffer
per ``(tag, shape, dtype)`` and the kernels fill it in place.

Pooling is *results-neutral by construction*: callers write each
buffer completely with the same operations (same operand order, same
association) the allocating expressions performed, so outputs are
bitwise identical to the unpooled path — the pool only removes the
allocator from the loop. The contract that makes reuse safe is that
pooled buffers never outlive the kernel call that filled them: anything
a kernel *returns* (a payload that travels the dataflow graph) is
freshly allocated, so two chains interleaved under one simulator clock
can never clobber each other's in-flight tokens.

Buffers are keyed per thread, so one pool object may be shared by every
block view of a :class:`~repro.pipeline.kernels.PipelineContext` even
when a campaign executor runs contexts from worker threads.
"""

from __future__ import annotations

import threading

import numpy as np


class WorkspacePool:
    """Preallocated scratch buffers keyed by ``(tag, shape, dtype)``.

    ``tag`` names the temporary (distinct tags for temporaries that are
    live at the same time); the shape/dtype key makes one pool serve
    every block size and precision mode a run streams.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable buffer of the given shape/dtype (contents stale).

        The caller must overwrite the buffer completely before reading
        it — contents are whatever the previous use left behind.
        """
        key = (threading.get_ident(), tag, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    def zeros(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every call."""
        buf = self.get(tag, shape, dtype)
        buf.fill(0)
        return buf

    def clear(self) -> None:
        """Drop every buffer and zero the hit/miss counters."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._buffers)
