"""Integral flow diagnostics used for solver validation.

The classical TGV verification quantities: volume-averaged kinetic
energy, enstrophy, total mass, and the incompressible dissipation
relation ``-dE_k/dt ~= 2 nu Omega`` that links them.
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicsError
from .state import FlowState


def volume_average(field: np.ndarray, mass_weights: np.ndarray) -> float:
    """Mass-weighted volume average ``(sum m_i f_i) / (sum m_i)``.

    ``mass_weights`` is the lumped-mass diagonal (node volumes), so the
    sum is the GLL integral of ``f`` over the domain.
    """
    field = np.asarray(field)
    mass_weights = np.asarray(mass_weights)
    if field.shape != mass_weights.shape:
        raise PhysicsError(
            f"field {field.shape} and weights {mass_weights.shape} differ"
        )
    total = mass_weights.sum()
    if total <= 0:
        raise PhysicsError("non-positive total volume")
    return float(np.dot(field, mass_weights) / total)


def total_mass(state: FlowState, mass_weights: np.ndarray) -> float:
    """Total fluid mass ``integral rho dV`` — exactly conserved on a
    periodic mesh by the conservative discretization (tested invariant)."""
    return float(np.dot(state.rho, np.asarray(mass_weights)))


def kinetic_energy(state: FlowState, mass_weights: np.ndarray) -> float:
    """Volume-averaged kinetic energy ``(1/V) integral rho |u|^2 / 2 dV``."""
    return volume_average(state.kinetic_energy_density(), mass_weights)


def enstrophy(
    vorticity_nodes: np.ndarray, rho: np.ndarray, mass_weights: np.ndarray
) -> float:
    """Volume-averaged enstrophy ``(1/V) integral rho |omega|^2 / 2 dV``.

    ``vorticity_nodes`` has shape ``(N, 3)``.
    """
    vorticity_nodes = np.asarray(vorticity_nodes)
    if vorticity_nodes.ndim != 2 or vorticity_nodes.shape[1] != 3:
        raise PhysicsError(
            f"vorticity must be (N, 3), got {vorticity_nodes.shape}"
        )
    omega_sq = 0.5 * np.asarray(rho) * np.sum(vorticity_nodes**2, axis=1)
    return volume_average(omega_sq, mass_weights)


def dissipation_rate_from_enstrophy(
    enstrophy_value: float, viscosity: float, rho0: float = 1.0
) -> float:
    """Incompressible estimate of ``-dE_k/dt`` from enstrophy.

    For incompressible flow, ``epsilon = 2 nu Omega`` with
    ``nu = mu / rho0``; at low Mach the compressible TGV obeys this to a
    few percent, which the integration tests exploit.
    """
    if viscosity < 0:
        raise PhysicsError("viscosity must be non-negative")
    return 2.0 * (viscosity / rho0) * enstrophy_value


def kinetic_energy_decay_curve(
    times: np.ndarray, nu: float, initial: float, length: float = 1.0
) -> np.ndarray:
    """Exact kinetic-energy decay of the 2D Taylor-Green solution.

    ``E_k(t) = E_k(0) * exp(-4 nu t / L^2)`` (velocity decays with
    ``exp(-2 nu t)``, energy with its square).
    """
    times = np.asarray(times, dtype=np.float64)
    return initial * np.exp(-4.0 * nu * times / length**2)
