"""Time-stepping driver: the paper's main loop (Section II-C).

Per time step, the driver walks the four RK4 stages — each evaluating the
diffusion and convection terms through the FEM operator — then performs
the RKU-style update of the primitive set ``rho, u, T, E, p``. Both
halves of the step execute pipeline IR: the spatial operator runs its
Navier-Stokes pipeline (inside
:meth:`~repro.solver.navier_stokes.NavierStokesOperator.residual`) and
the stage combinations plus the RKU primitive update run the
:func:`~repro.pipeline.rk_update.rk_update_pipeline` instances via
:func:`~repro.pipeline.executor.run_pipeline` — the same stage graphs
the accelerator co-simulator streams
(:func:`repro.accel.cosim.cosimulate_rk_stage`) and the workload model
prices. Phase attribution follows the paper's Fig. 2 categories:

- ``rk.diffusion`` / ``rk.convection`` — inside the operator;
- ``rk.update`` — RK stage combinations (axpy) and the RKU primitive
  update (counted as RK(Other) alongside ``rk.other``);
- ``non_rk`` — CFL control, diagnostics, setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SolverError
from ..physics.diagnostics import kinetic_energy, total_mass
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED, FlowState
from ..physics.taylor_green import TGVCase, taylor_green_initial
from ..pipeline import (
    RKUpdateContext,
    bind_stage_buffers,
    rk_update_pipeline,
    run_pipeline,
)
from ..timeint.butcher import RK4, ButcherTableau
from ..timeint.cfl import stable_time_step
from .navier_stokes import NavierStokesOperator
from .profiler import PhaseProfiler


@dataclass(frozen=True)
class StepRecord:
    """Diagnostics snapshot after one completed time step."""

    step: int
    time: float
    dt: float
    kinetic_energy: float
    total_mass: float
    max_velocity: float


@dataclass
class SimulationResult:
    """Everything a run produced: final state, history, profiler."""

    final_state: FlowState
    records: list[StepRecord]
    profiler: PhaseProfiler
    gas: GasProperties

    @property
    def num_steps(self) -> int:
        return len(self.records)

    def kinetic_energy_series(self) -> np.ndarray:
        """``(num_steps, 2)`` array of (time, volume-averaged E_k)."""
        return np.array([(r.time, r.kinetic_energy) for r in self.records])

    def mass_drift(self) -> float:
        """Relative drift of total mass over the run (0 for exact
        conservation)."""
        if not self.records:
            raise SolverError("no steps recorded")
        first = self.records[0].total_mass
        last = self.records[-1].total_mass
        return abs(last - first) / abs(first)


class Simulation:
    """One TGV (or custom initial state) simulation on a periodic mesh.

    ``backend`` selects the compute backend for the operator's hot
    kernels (name, :class:`~repro.backend.KernelBackend` instance, or
    ``None`` for the ``REPRO_BACKEND``/default selection); ``fusion``
    selects how much of the gather/scatter round-trip the diffusion and
    convection passes share (see
    :class:`~repro.solver.navier_stokes.NavierStokesOperator`);
    ``dtype`` selects the precision mode (``"float64"``, ``"float32"``,
    ``"mixed"``; ``None`` defers to ``REPRO_DTYPE``) — the whole RK step
    (stage states, derivatives, axpy accumulation, primitives) then runs
    under that policy.
    """

    @property
    def backend_name(self) -> str:
        """Name of the compute backend the operator resolved."""
        return self.operator.backend.name

    @classmethod
    def from_run_config(cls, config, case: TGVCase | None = None, **kwargs):
        """Build a periodic TGV simulation from a :class:`~repro.config.RunConfig`.

        Mesh size and polynomial order come from ``config.mesh``; the CFL
        number and compute backend from ``config.solver`` (this is the
        config-file channel for ``SolverConfig.backend``). When ``case``
        is omitted, the TGV case physics are derived from
        ``config.solver`` too — gamma, gas constant, Prandtl, and the
        Reynolds number implied by its viscosity under the unit TGV
        reference scales (``Re = rho0 V0 L / mu``) — so every field of
        the config is honored. An explicit ``case`` takes precedence for
        all physics. Keyword arguments override the config-derived
        defaults. Run it with ``sim.run(config.num_time_steps)``.
        """
        import math

        from ..mesh.hexmesh import periodic_box_mesh

        solver = config.solver
        if case is None:
            case = TGVCase(
                reynolds=(
                    math.inf if solver.viscosity == 0 else 1.0 / solver.viscosity
                ),
                gamma=solver.gamma,
                gas_constant=solver.gas_constant,
                prandtl=solver.prandtl,
            )
        mesh = periodic_box_mesh(
            config.mesh.elements_per_direction, config.mesh.polynomial_order
        )
        kwargs.setdefault("cfl", solver.cfl)
        kwargs.setdefault("backend", solver.backend)
        kwargs.setdefault("num_workers", solver.num_workers)
        kwargs.setdefault("dtype", solver.dtype)
        return cls(mesh, case, **kwargs)

    def __init__(
        self,
        mesh,
        case: TGVCase,
        tableau: ButcherTableau = RK4,
        profiler: PhaseProfiler | None = None,
        initial_state: FlowState | None = None,
        fused_operator: bool = False,
        cfl: float = 0.5,
        fusion: str | None = None,
        backend=None,
        num_workers: int | None = None,
        dtype=None,
    ) -> None:
        self.case = case
        self.gas = case.gas()
        self.tableau = tableau
        self.cfl = cfl
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        with self.profiler.phase("non_rk"):
            self.operator = NavierStokesOperator(
                mesh,
                self.gas,
                profiler=self.profiler,
                fused=fused_operator,
                fusion=fusion,
                backend=backend,
                num_workers=num_workers,
                dtype=dtype,
            )
            self.precision = self.operator.precision
            if initial_state is None:
                initial_state = taylor_green_initial(mesh.coords, case)
            initial_state.validate()
            self.state = initial_state
            self.time = 0.0
            self._min_spacing, _ = self.operator.stable_dt_inputs(self.state)
            # The RK-update pipelines the step executes: the
            # combination-only variant for the intermediate stages and
            # the full variant (axpy + RKU primitive update) for the
            # step's end. Their preallocated buffers — reused by every
            # step, the accelerator's on-chip staging analogue — are a
            # graph rewrite (bind_stage_buffers), not a bespoke path.
            shape = (NUM_CONSERVED, mesh.num_nodes)
            storage = self.precision.storage
            acc_dtype = self.precision.accumulate_for(storage)
            self._rk_buffers = {
                "increment": np.empty(shape, dtype=acc_dtype),
                "scratch": np.empty(shape, dtype=acc_dtype),
                "stage_state": np.empty(shape, dtype=storage),
                "primitives": np.empty(shape, dtype=storage),
            }
            bindings = {
                "stage_axpy": {
                    "acc": "increment",
                    "scratch": "scratch",
                    "out": "stage_state",
                },
                "store_state": {"out": "stage_state"},
            }
            self._rk_combine = bind_stage_buffers(
                rk_update_pipeline(primitives=False), bindings
            )
            self._rk_update = bind_stage_buffers(
                rk_update_pipeline(primitives=True),
                {
                    **bindings,
                    "update_primitives": {"out": "primitives"},
                    "store_primitives": {"out": "primitives"},
                },
            )
            self._rku_ctx = RKUpdateContext(
                gas=self.gas,
                num_nodes=mesh.num_nodes,
                buffers=self._rk_buffers,
                precision=self.precision,
            )

    # -- stepping -------------------------------------------------------------

    def compute_dt(self) -> float:
        """CFL-stable step for the current state."""
        wave = self.state.max_wave_speed(self.gas)
        nu = self.gas.viscosity / float(np.min(self.state.rho))
        return stable_time_step(
            self._min_spacing, wave, nu, cfl=self.cfl
        )

    def _run_rk_update(
        self,
        pipeline,
        y: np.ndarray,
        derivs: list[np.ndarray],
        coeffs,
        dt: float,
    ) -> np.ndarray:
        """Execute one RK-update pipeline instance on the whole mesh.

        Binds the step's external payloads and returns the combined
        (stage or final) state, which lives in the preallocated
        ``stage_state`` buffer when the combination is non-trivial.
        """
        outputs = run_pipeline(
            pipeline,
            self._rku_ctx,
            {"state": y, "derivs": derivs, "coeffs": coeffs, "dt": dt},
            profiler=self.profiler,
        )
        return outputs["updated_state"]

    def step(self, dt: float) -> None:
        """Advance one RK step of size ``dt`` (the paper's RKL + RKU).

        Each half runs its pipeline IR: the spatial operator evaluates
        the stage derivatives through the Navier-Stokes pipeline, and
        the stage combinations plus the final RKU primitive update
        (``rho, u, T, E, p``) run the :mod:`repro.pipeline.rk_update`
        instances — writing into the buffers the
        ``bind_stage_buffers`` rewrite preallocated at construction, so
        the steady-state loop performs no per-stage allocations beyond
        the residual evaluations themselves.
        """
        if dt <= 0:
            raise SolverError(f"dt must be positive, got {dt}")
        tableau = self.tableau
        # The step runs in the policy's storage dtype; FlowState itself
        # stays float64 internally (an f32 -> f64 -> f32 round trip is
        # exact, so the streamed device state is reproduced bitwise).
        y = self.state.as_stacked().astype(
            self.precision.storage, copy=False
        )
        stage_derivs: list[np.ndarray] = []
        for stage in range(tableau.num_stages):
            y_stage = y
            if stage > 0 and np.any(tableau.a[stage, :stage] != 0.0):
                y_stage = self._run_rk_update(
                    self._rk_combine,
                    y,
                    stage_derivs,
                    tableau.a[stage, :stage],
                    dt,
                )
            # The operator attributes its own rk.diffusion / rk.convection.
            stage_derivs.append(self.operator.residual(y_stage))
        # RKU: the final combination and the primitive re-derivation
        # (the values the paper's RKU kernel writes back each step, left
        # in the "primitives" buffer as u, v, w, T, p).
        updated = self._run_rk_update(
            self._rk_update, y, stage_derivs, tableau.b, dt
        )
        self.state = FlowState.from_stacked(updated)
        self.time += dt

    def run(
        self,
        num_steps: int,
        dt: float | None = None,
        validate_every: int = 0,
    ) -> SimulationResult:
        """Run ``num_steps`` RK steps; ``dt=None`` uses the CFL controller.

        ``validate_every > 0`` checks state physicality every that many
        steps (costs time, attributed to Non-RK as in the paper).
        """
        if num_steps < 1:
            raise SolverError("num_steps must be >= 1")
        records: list[StepRecord] = []
        for step_idx in range(num_steps):
            with self.profiler.phase("non_rk"):
                step_dt = dt if dt is not None else self.compute_dt()
            self.step(step_dt)
            with self.profiler.phase("non_rk"):
                if validate_every and (step_idx + 1) % validate_every == 0:
                    self.state.validate()
                records.append(self._record(step_idx, step_dt))
        return SimulationResult(
            final_state=self.state,
            records=records,
            profiler=self.profiler,
            gas=self.gas,
        )

    def _record(self, step_idx: int, dt: float) -> StepRecord:
        mass_w = self.operator.mass
        speed = np.sqrt(np.sum(self.state.velocity() ** 2, axis=0))
        return StepRecord(
            step=step_idx + 1,
            time=self.time,
            dt=dt,
            kinetic_energy=kinetic_energy(self.state, mass_w),
            total_mass=total_mass(self.state, mass_w),
            max_velocity=float(speed.max()),
        )
