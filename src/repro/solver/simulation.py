"""Time-stepping driver: the paper's main loop (Section II-C).

Per time step, the driver walks the four RK4 stages — each evaluating the
diffusion and convection terms through the FEM operator — then performs
the RKU-style update of the primitive set ``rho, u, T, E, p``. Phase
attribution follows the paper's Fig. 2 categories:

- ``rk.diffusion`` / ``rk.convection`` — inside the operator;
- ``rk.update`` — RK stage combinations (axpy) and the RKU primitive
  update (counted as RK(Other) alongside ``rk.other``);
- ``non_rk`` — CFL control, diagnostics, setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SolverError
from ..physics.diagnostics import kinetic_energy, total_mass
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED, FlowState
from ..physics.taylor_green import TGVCase, taylor_green_initial
from ..timeint.butcher import RK4, ButcherTableau
from ..timeint.cfl import stable_time_step
from .navier_stokes import NavierStokesOperator
from .profiler import PhaseProfiler


@dataclass(frozen=True)
class StepRecord:
    """Diagnostics snapshot after one completed time step."""

    step: int
    time: float
    dt: float
    kinetic_energy: float
    total_mass: float
    max_velocity: float


@dataclass
class SimulationResult:
    """Everything a run produced: final state, history, profiler."""

    final_state: FlowState
    records: list[StepRecord]
    profiler: PhaseProfiler
    gas: GasProperties

    @property
    def num_steps(self) -> int:
        return len(self.records)

    def kinetic_energy_series(self) -> np.ndarray:
        """``(num_steps, 2)`` array of (time, volume-averaged E_k)."""
        return np.array([(r.time, r.kinetic_energy) for r in self.records])

    def mass_drift(self) -> float:
        """Relative drift of total mass over the run (0 for exact
        conservation)."""
        if not self.records:
            raise SolverError("no steps recorded")
        first = self.records[0].total_mass
        last = self.records[-1].total_mass
        return abs(last - first) / abs(first)


class Simulation:
    """One TGV (or custom initial state) simulation on a periodic mesh.

    ``backend`` selects the compute backend for the operator's hot
    kernels (name, :class:`~repro.backend.KernelBackend` instance, or
    ``None`` for the ``REPRO_BACKEND``/default selection); ``fusion``
    selects how much of the gather/scatter round-trip the diffusion and
    convection passes share (see
    :class:`~repro.solver.navier_stokes.NavierStokesOperator`).
    """

    @property
    def backend_name(self) -> str:
        """Name of the compute backend the operator resolved."""
        return self.operator.backend.name

    @classmethod
    def from_run_config(cls, config, case: TGVCase | None = None, **kwargs):
        """Build a periodic TGV simulation from a :class:`~repro.config.RunConfig`.

        Mesh size and polynomial order come from ``config.mesh``; the CFL
        number and compute backend from ``config.solver`` (this is the
        config-file channel for ``SolverConfig.backend``). When ``case``
        is omitted, the TGV case physics are derived from
        ``config.solver`` too — gamma, gas constant, Prandtl, and the
        Reynolds number implied by its viscosity under the unit TGV
        reference scales (``Re = rho0 V0 L / mu``) — so every field of
        the config is honored. An explicit ``case`` takes precedence for
        all physics. Keyword arguments override the config-derived
        defaults. Run it with ``sim.run(config.num_time_steps)``.
        """
        import math

        from ..mesh.hexmesh import periodic_box_mesh

        solver = config.solver
        if case is None:
            case = TGVCase(
                reynolds=(
                    math.inf if solver.viscosity == 0 else 1.0 / solver.viscosity
                ),
                gamma=solver.gamma,
                gas_constant=solver.gas_constant,
                prandtl=solver.prandtl,
            )
        mesh = periodic_box_mesh(
            config.mesh.elements_per_direction, config.mesh.polynomial_order
        )
        kwargs.setdefault("cfl", solver.cfl)
        kwargs.setdefault("backend", solver.backend)
        return cls(mesh, case, **kwargs)

    def __init__(
        self,
        mesh,
        case: TGVCase,
        tableau: ButcherTableau = RK4,
        profiler: PhaseProfiler | None = None,
        initial_state: FlowState | None = None,
        fused_operator: bool = False,
        cfl: float = 0.5,
        fusion: str | None = None,
        backend=None,
    ) -> None:
        self.case = case
        self.gas = case.gas()
        self.tableau = tableau
        self.cfl = cfl
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        with self.profiler.phase("non_rk"):
            self.operator = NavierStokesOperator(
                mesh,
                self.gas,
                profiler=self.profiler,
                fused=fused_operator,
                fusion=fusion,
                backend=backend,
            )
            if initial_state is None:
                initial_state = taylor_green_initial(mesh.coords, case)
            initial_state.validate()
            self.state = initial_state
            self.time = 0.0
            self._min_spacing, _ = self.operator.stable_dt_inputs(self.state)
            # Preallocated RK stage-combination buffers, reused by every
            # step (the accelerator's on-chip staging analogue): the
            # accumulated increment, a scaled-derivative scratch, and the
            # stage-state buffer the operator reads from.
            shape = (NUM_CONSERVED, mesh.num_nodes)
            self._rk_increment = np.empty(shape)
            self._rk_scratch = np.empty(shape)
            self._rk_stage_state = np.empty(shape)

    # -- stepping -------------------------------------------------------------

    def compute_dt(self) -> float:
        """CFL-stable step for the current state."""
        wave = self.state.max_wave_speed(self.gas)
        nu = self.gas.viscosity / float(np.min(self.state.rho))
        return stable_time_step(
            self._min_spacing, wave, nu, cfl=self.cfl
        )

    def _accumulate_weighted(
        self, derivs: list[np.ndarray], coeffs, out: np.ndarray
    ) -> bool:
        """``out = sum_k coeffs[k] * derivs[k]`` using the scratch buffer.

        Writes into the preallocated ``out`` without per-term temporaries;
        returns False when every coefficient is zero (``out`` untouched).
        """
        scratch = self._rk_scratch
        first = True
        for deriv, coeff in zip(derivs, coeffs):
            if coeff == 0.0:
                continue
            if first:
                np.multiply(deriv, coeff, out=out)
                first = False
            else:
                np.multiply(deriv, coeff, out=scratch)
                out += scratch
        return not first

    def step(self, dt: float) -> None:
        """Advance one RK step of size ``dt`` (the paper's RKL + RKU).

        The stage-combination axpys run in the buffers preallocated at
        construction, so the steady-state loop performs no per-stage
        allocations beyond the residual evaluations themselves.
        """
        if dt <= 0:
            raise SolverError(f"dt must be positive, got {dt}")
        prof = self.profiler
        tableau = self.tableau
        y = self.state.as_stacked()
        stage_derivs: list[np.ndarray] = []
        for stage in range(tableau.num_stages):
            with prof.phase("rk.update"):
                y_stage = y
                if stage > 0 and self._accumulate_weighted(
                    stage_derivs, tableau.a[stage, :stage], self._rk_increment
                ):
                    np.multiply(self._rk_increment, dt, out=self._rk_stage_state)
                    self._rk_stage_state += y
                    y_stage = self._rk_stage_state
            # The operator attributes its own rk.diffusion / rk.convection.
            stage_derivs.append(self.operator.residual(y_stage))
        with prof.phase("rk.update"):
            if self._accumulate_weighted(
                stage_derivs, tableau.b, self._rk_increment
            ):
                y = y + dt * self._rk_increment
            new_state = FlowState.from_stacked(y)
            # RKU: re-derive the primitive set rho, u, T, E, p (the values
            # the paper's RKU kernel writes back each step).
            _ = new_state.velocity()
            _ = new_state.temperature(self.gas)
            _ = new_state.pressure(self.gas)
        self.state = new_state
        self.time += dt

    def run(
        self,
        num_steps: int,
        dt: float | None = None,
        validate_every: int = 0,
    ) -> SimulationResult:
        """Run ``num_steps`` RK steps; ``dt=None`` uses the CFL controller.

        ``validate_every > 0`` checks state physicality every that many
        steps (costs time, attributed to Non-RK as in the paper).
        """
        if num_steps < 1:
            raise SolverError("num_steps must be >= 1")
        records: list[StepRecord] = []
        for step_idx in range(num_steps):
            with self.profiler.phase("non_rk"):
                step_dt = dt if dt is not None else self.compute_dt()
            self.step(step_dt)
            with self.profiler.phase("non_rk"):
                if validate_every and (step_idx + 1) % validate_every == 0:
                    self.state.validate()
                records.append(self._record(step_idx, step_dt))
        return SimulationResult(
            final_state=self.state,
            records=records,
            profiler=self.profiler,
            gas=self.gas,
        )

    def _record(self, step_idx: int, dt: float) -> StepRecord:
        mass_w = self.operator.mass
        speed = np.sqrt(np.sum(self.state.velocity() ** 2, axis=0))
        return StepRecord(
            step=step_idx + 1,
            time=self.time,
            dt=dt,
            kinetic_energy=kinetic_energy(self.state, mass_w),
            total_mass=total_mass(self.state, mass_w),
            max_velocity=float(speed.max()),
        )
