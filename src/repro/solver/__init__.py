"""The FEM Navier-Stokes solver (the paper's Section II-C source code).

Composes the mesh, FEM, physics and time-integration substrates into the
solver whose RK hotspot the paper accelerates:

- :mod:`repro.solver.navier_stokes` — the spatial operator, structured as
  the Fig. 1 dataflow (LOAD element -> COMPUTE diffusion / convection ->
  STORE contribution, with the node-level gradient / tau / residual
  stages inside);
- :mod:`repro.solver.simulation` — the time-stepping driver with the RK
  stage loop and the RKU-style update of ``rho, u, T, E, p``;
- :mod:`repro.solver.profiler` — the phase profiler that regenerates the
  paper's Fig. 2 execution-time breakdown;
- :mod:`repro.solver.workload` — analytic per-phase operation and byte
  counts, the common input of the CPU and FPGA timing models.
"""

from .profiler import PhaseProfiler, PhaseBreakdown
from .navier_stokes import NavierStokesOperator
from .simulation import Simulation, SimulationResult, StepRecord
from .workload import (
    PhaseWork,
    RKWorkload,
    rk_stage_workload,
    full_step_workload,
    workload_for_node_count,
)

__all__ = [
    "PhaseProfiler",
    "PhaseBreakdown",
    "NavierStokesOperator",
    "Simulation",
    "SimulationResult",
    "StepRecord",
    "PhaseWork",
    "RKWorkload",
    "rk_stage_workload",
    "full_step_workload",
    "workload_for_node_count",
]
