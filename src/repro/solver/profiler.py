"""Phase-attributed wall-clock profiling (regenerates paper Fig. 2).

The paper profiles its C++ solver and finds the RK method dominating
(76.5 % on average), with Diffusion (39.2 %) and Convection (21.04 %) the
top hotspots. :class:`PhaseProfiler` instruments our functional solver the
same way: named phases, context-manager scoping, and a percentage
breakdown compatible with the paper's categories.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import SolverError

#: The four categories of paper Fig. 2.
FIG2_CATEGORIES = ("rk_diffusion", "rk_convection", "rk_other", "non_rk")


@dataclass
class PhaseBreakdown:
    """Execution-time shares by category (fractions summing to 1)."""

    rk_diffusion: float
    rk_convection: float
    rk_other: float
    non_rk: float

    def __post_init__(self) -> None:
        total = self.rk_diffusion + self.rk_convection + self.rk_other + self.non_rk
        if abs(total - 1.0) > 1e-9:
            raise SolverError(f"breakdown fractions must sum to 1, got {total}")

    @property
    def rk_total(self) -> float:
        """Share of the whole RK method (the accelerated region)."""
        return self.rk_diffusion + self.rk_convection + self.rk_other

    def as_percentages(self) -> dict[str, float]:
        """Category -> percentage, for report printing."""
        return {
            "RK(Diffusion)": 100.0 * self.rk_diffusion,
            "RK(Convection)": 100.0 * self.rk_convection,
            "RK(Other)": 100.0 * self.rk_other,
            "Non-RK": 100.0 * self.non_rk,
        }


#: The paper's measured Fig. 2 breakdown.
PAPER_FIG2_BREAKDOWN = PhaseBreakdown(
    rk_diffusion=0.392,
    rk_convection=0.2104,
    rk_other=0.1613,
    non_rk=0.2363,
)


class PhaseProfiler:
    """Accumulates wall-clock time into named phases.

    Phases may nest; only the innermost active phase accrues time, so the
    totals partition wall-clock without double counting.
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._stack: list[tuple[str, float]] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute the enclosed wall-clock time to ``name``."""
        now = time.perf_counter()
        if self._stack:
            parent, started = self._stack[-1]
            self._totals[parent] = self._totals.get(parent, 0.0) + (now - started)
        self._stack.append((name, now))
        try:
            yield
        finally:
            end = time.perf_counter()
            name_done, started = self._stack.pop()
            self._totals[name_done] = self._totals.get(name_done, 0.0) + (
                end - started
            )
            if self._stack:
                parent, _ = self._stack[-1]
                self._stack[-1] = (parent, end)

    def total(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        """Copy of all accumulated phase totals."""
        return dict(self._totals)

    def grand_total(self) -> float:
        """Sum over all phases."""
        return sum(self._totals.values())

    def reset(self) -> None:
        """Clear all accumulated time."""
        if self._stack:
            raise SolverError("cannot reset profiler while phases are active")
        self._totals.clear()

    def breakdown(self) -> PhaseBreakdown:
        """Fold phase totals into the paper's Fig. 2 categories.

        Phases named ``rk.diffusion`` / ``rk.convection`` map directly;
        any other ``rk.*`` phase counts as RK(Other); everything else is
        Non-RK.
        """
        total = self.grand_total()
        if total <= 0:
            raise SolverError("no profiled time to break down")
        diff = conv = other = non = 0.0
        for name, secs in self._totals.items():
            if name == "rk.diffusion":
                diff += secs
            elif name == "rk.convection":
                conv += secs
            elif name.startswith("rk."):
                other += secs
            else:
                non += secs
        return PhaseBreakdown(
            rk_diffusion=diff / total,
            rk_convection=conv / total,
            rk_other=other / total,
            non_rk=non / total,
        )

    def report(self) -> str:
        """Human-readable phase table sorted by time."""
        total = self.grand_total()
        lines = ["phase                          seconds    share"]
        for name, secs in sorted(self._totals.items(), key=lambda kv: -kv[1]):
            share = 100.0 * secs / total if total > 0 else 0.0
            lines.append(f"{name:<28} {secs:>10.4f} {share:>7.2f}%")
        lines.append(f"{'total':<28} {total:>10.4f} {100.0:>7.2f}%")
        return "\n".join(lines)
