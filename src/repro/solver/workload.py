"""Analytic operation and memory-traffic characterization of the solver.

Both timing models — the Xeon roofline (:mod:`repro.cpu`) and the FPGA
dataflow accelerator (:mod:`repro.accel`) — consume the *same* workload
description derived here from the FEM algorithm, so the speedups the
benchmarks report emerge from architectural modeling of identical work,
never from inconsistent accounting.

Counting conventions
--------------------
- Counts are **per RK stage** unless stated otherwise; one time step runs
  ``tableau.num_stages`` stages plus the RK combination and RKU update.
- ``Q = (p + 1)**3`` nodes per element; ``n1 = p + 1``.
- A "value" is one scalar of the working precision (the CPU model prices
  fp64, the accelerator fp32).
- Gather/scatter DRAM traffic counts the element-copy volume (each
  element reads its own copy of shared nodes), matching both the paper's
  C++ (independent diffusion/convection passes) and the accelerator's
  LOAD/STORE streams.

The per-node operation counts follow directly from the arithmetic in
:mod:`repro.fem.operators` and :mod:`repro.physics`; each constant is
annotated with its origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import SolverError
from ..timeint.butcher import RK4, ButcherTableau

#: Conserved fields (rho, 3 momentum, total energy).
NUM_FIELDS = 5
#: Fields whose gradient the diffusion pass needs (u, v, w, T).
NUM_GRADIENT_FIELDS = 4
#: Fields with a nonzero viscous flux (3 momentum + energy).
NUM_VISCOUS_FIELDS = 4
#: Per-element metric values streamed alongside the state for an affine
#: element: 9 inverse-Jacobian entries plus the per-node quadrature scale.
METRIC_VALUES_PER_ELEMENT_CONST = 9


@dataclass(frozen=True)
class OpCount:
    """Operation and traffic counts of one code region."""

    adds: float = 0.0
    muls: float = 0.0
    divs: float = 0.0
    specials: float = 0.0  # sqrt and friends
    dram_reads: float = 0.0  # values
    dram_writes: float = 0.0  # values

    @property
    def flops(self) -> float:
        """Total floating-point operations (all classes)."""
        return self.adds + self.muls + self.divs + self.specials

    @property
    def dram_values(self) -> float:
        """Total DRAM traffic in values."""
        return self.dram_reads + self.dram_writes

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            adds=self.adds + other.adds,
            muls=self.muls + other.muls,
            divs=self.divs + other.divs,
            specials=self.specials + other.specials,
            dram_reads=self.dram_reads + other.dram_reads,
            dram_writes=self.dram_writes + other.dram_writes,
        )

    def scaled(self, factor: float) -> "OpCount":
        """All counts multiplied by ``factor``."""
        return OpCount(
            adds=self.adds * factor,
            muls=self.muls * factor,
            divs=self.divs * factor,
            specials=self.specials * factor,
            dram_reads=self.dram_reads * factor,
            dram_writes=self.dram_writes * factor,
        )


# ---------------------------------------------------------------------------
# Per-node building blocks (functions of the 1D node count n1)
# ---------------------------------------------------------------------------


def primitives_per_node() -> OpCount:
    """Conservative -> primitive conversion at one node.

    ``u = m / rho`` (3 div), kinetic ``m.u/2`` (3 mul + 2 add + 1 mul),
    internal energy (1 sub), pressure (1 mul), temperature (1 div, 1 mul).
    """
    return OpCount(adds=3, muls=6, divs=4)


def gradient_per_node_per_field(n1: int) -> OpCount:
    """One field's physical gradient at one node.

    Reference gradient: 3 directions x (n1 mul + (n1 - 1) add); metric
    application (affine): 9 mul + 6 add.
    """
    return OpCount(adds=3 * (n1 - 1) + 6, muls=3 * n1 + 9)


def tau_per_node() -> OpCount:
    """Viscous stress tensor at one node (see ``physics.viscous``).

    Trace (2 add), symmetrization (9 add), scale by mu (9 mul), diagonal
    Stokes correction (1 mul + 3 mul + 3 add).
    """
    return OpCount(adds=14, muls=13)


def viscous_flux_per_node() -> OpCount:
    """``tau . u`` (9 mul + 6 add) plus ``kappa grad T`` (3 mul + 3 add)."""
    return OpCount(adds=9, muls=12)


def euler_flux_per_node() -> OpCount:
    """Euler fluxes: ``rho u`` (3 mul), ``rho u_i u_j + p I`` (9 mul +
    3 add), ``(E + p) u`` (1 add + 3 mul)."""
    return OpCount(adds=4, muls=15)


def weak_divergence_per_node_per_field(n1: int) -> OpCount:
    """One field's weak divergence at one node.

    Contravariant transform (9 mul + 6 add) + quadrature scaling (3 mul);
    transposed derivative in 3 directions (3 n1 mul + 3 (n1 - 1) add) and
    2 adds combining the direction partials.
    """
    return OpCount(adds=6 + 3 * (n1 - 1) + 2, muls=12 + 3 * n1)


# ---------------------------------------------------------------------------
# Per-element tasks (the paper's Fig. 1 / Fig. 3 stages)
# ---------------------------------------------------------------------------


def load_element(q: int, num_fields: int = NUM_FIELDS) -> OpCount:
    """LOAD-element: stream state fields + metric terms from DRAM."""
    return OpCount(
        dram_reads=num_fields * q + q + METRIC_VALUES_PER_ELEMENT_CONST
    )


def store_element(q: int, num_fields: int) -> OpCount:
    """STORE-element-contribution: accumulating scatter (read-modify-write)."""
    return OpCount(
        adds=num_fields * q,
        dram_reads=num_fields * q,
        dram_writes=num_fields * q,
    )


def compute_convection_element(n1: int) -> OpCount:
    """COMPUTE-convection for one element (no DRAM traffic; on-chip)."""
    q = n1**3
    work = primitives_per_node().scaled(q)
    work = work + euler_flux_per_node().scaled(q)
    work = work + weak_divergence_per_node_per_field(n1).scaled(q * NUM_FIELDS)
    return work


def compute_diffusion_element(n1: int) -> OpCount:
    """COMPUTE-diffusion for one element: gradients, tau, viscous fluxes,
    weak divergences."""
    q = n1**3
    work = primitives_per_node().scaled(q)
    work = work + gradient_per_node_per_field(n1).scaled(q * NUM_GRADIENT_FIELDS)
    work = work + tau_per_node().scaled(q)
    work = work + viscous_flux_per_node().scaled(q)
    work = work + weak_divergence_per_node_per_field(n1).scaled(
        q * NUM_VISCOUS_FIELDS
    )
    return work


# ---------------------------------------------------------------------------
# Per-node global stages (mass inversion, RK combination, RKU update)
# ---------------------------------------------------------------------------


def mass_inversion_per_node() -> OpCount:
    """Divide the 5 assembled residuals by the lumped mass."""
    return OpCount(divs=NUM_FIELDS, dram_reads=NUM_FIELDS + 1, dram_writes=NUM_FIELDS)


def rk_axpy_per_node(tableau: ButcherTableau) -> OpCount:
    """RK stage combinations for one full step at one node.

    Every nonzero tableau entry costs one fused multiply-add per field and
    streams the corresponding derivative array.
    """
    import numpy as np

    nnz = int(np.count_nonzero(tableau.a)) + int(np.count_nonzero(tableau.b))
    return OpCount(
        adds=nnz * NUM_FIELDS,
        muls=nnz * NUM_FIELDS,
        dram_reads=(nnz + tableau.num_stages) * NUM_FIELDS,
        dram_writes=tableau.num_stages * NUM_FIELDS,
    )


def rku_update_per_node() -> OpCount:
    """The RKU kernel's primitive update ``rho, u, T, E, p`` at one node.

    ``u = m / rho`` (3 div), kinetic (6 ops), internal energy (1), T
    (1 div + 1 mul), p (1 mul); reads the 5 conserved values, writes the
    5 primitive outputs (3 velocity components, T, p).
    """
    return OpCount(
        adds=3,
        muls=5,
        divs=4,
        dram_reads=NUM_FIELDS,
        dram_writes=NUM_FIELDS,
    )


def non_rk_per_node() -> OpCount:
    """Host-side work outside the RK method, per node per time step.

    Models the paper's "Non-RK" 23.63 %: CFL signal speed (1 sqrt + a few
    ops), integral diagnostics (one read pass over the conserved set),
    and solution bookkeeping/output staging (read + format + write of the
    primitive and conserved sets — 5 reads of each, 3 staged writes of
    the primitive set).
    """
    return OpCount(
        adds=6,
        muls=8,
        divs=1,
        specials=1,
        dram_reads=5 * NUM_FIELDS,
        dram_writes=3 * NUM_FIELDS,
    )


# ---------------------------------------------------------------------------
# Aggregated workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseWork:
    """One Fig. 2 phase over the full mesh for one time step."""

    name: str
    ops: OpCount

    def scaled(self, factor: float) -> "PhaseWork":
        return PhaseWork(name=self.name, ops=self.ops.scaled(factor))


@dataclass(frozen=True)
class RKWorkload:
    """Per-time-step workload of the whole solver on a given mesh.

    Attributes
    ----------
    num_nodes / num_elements:
        Mesh size the counts are scaled to.
    polynomial_order:
        FEM order ``p``.
    phases:
        Mapping of phase name (``rk_diffusion``, ``rk_convection``,
        ``rk_other``, ``non_rk``) to :class:`PhaseWork` for one time step.
    """

    num_nodes: int
    num_elements: int
    polynomial_order: int
    num_stages: int
    phases: dict[str, PhaseWork] = field(default_factory=dict)

    def total_ops(self) -> OpCount:
        """Sum of all phases."""
        total = OpCount()
        for phase in self.phases.values():
            total = total + phase.ops
        return total

    def rk_ops(self) -> OpCount:
        """Sum of the RK-method phases (the accelerated region)."""
        total = OpCount()
        for name, phase in self.phases.items():
            if name != "non_rk":
                total = total + phase.ops
        return total


def rk_stage_workload(
    num_elements: int, polynomial_order: int
) -> dict[str, OpCount]:
    """Diffusion / convection element-pass work for ONE RK stage.

    Each pass performs its own LOAD and STORE (paper Fig. 1: both
    branches begin with LOAD Node and end with STORE Node Contribution).
    """
    n1 = polynomial_order + 1
    q = n1**3
    convection = (
        load_element(q)
        + compute_convection_element(n1)
        + store_element(q, NUM_FIELDS)
    )
    diffusion = (
        load_element(q)
        + compute_diffusion_element(n1)
        + store_element(q, NUM_VISCOUS_FIELDS)
    )
    return {
        "rk_convection": convection.scaled(num_elements),
        "rk_diffusion": diffusion.scaled(num_elements),
    }


def full_step_workload(
    num_nodes: int,
    num_elements: int,
    polynomial_order: int,
    tableau: ButcherTableau = RK4,
) -> RKWorkload:
    """Workload of one complete time step on the given mesh."""
    if num_nodes < 1 or num_elements < 1:
        raise SolverError("mesh sizes must be positive")
    stages = tableau.num_stages
    stage = rk_stage_workload(num_elements, polynomial_order)
    rk_other = (
        mass_inversion_per_node().scaled(num_nodes * stages)
        + rk_axpy_per_node(tableau).scaled(num_nodes)
        + rku_update_per_node().scaled(num_nodes)
    )
    phases = {
        "rk_diffusion": PhaseWork(
            "rk_diffusion", stage["rk_diffusion"].scaled(stages)
        ),
        "rk_convection": PhaseWork(
            "rk_convection", stage["rk_convection"].scaled(stages)
        ),
        "rk_other": PhaseWork("rk_other", rk_other),
        "non_rk": PhaseWork("non_rk", non_rk_per_node().scaled(num_nodes)),
    }
    return RKWorkload(
        num_nodes=num_nodes,
        num_elements=num_elements,
        polynomial_order=polynomial_order,
        num_stages=stages,
        phases=phases,
    )


def workload_for_node_count(
    num_nodes: int, polynomial_order: int = 2, tableau: ButcherTableau = RK4
) -> RKWorkload:
    """Workload for a periodic box mesh with ~``num_nodes`` nodes.

    On the periodic TGV mesh of order ``p``, elements number
    ``num_nodes / p**3`` (each element contributes ``p**3`` unique nodes).
    """
    if num_nodes < 1:
        raise SolverError("num_nodes must be >= 1")
    num_elements = max(1, round(num_nodes / polynomial_order**3))
    return full_step_workload(num_nodes, num_elements, polynomial_order, tableau)
