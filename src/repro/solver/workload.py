"""Analytic operation and memory-traffic characterization of the solver.

Both timing models — the Xeon roofline (:mod:`repro.cpu`) and the FPGA
dataflow accelerator (:mod:`repro.accel`) — consume the *same* workload
description derived here from the FEM algorithm, so the speedups the
benchmarks report emerge from architectural modeling of identical work,
never from inconsistent accounting.

Counting conventions
--------------------
- Counts are **per RK stage** unless stated otherwise; one time step runs
  ``tableau.num_stages`` stages plus the RK combination and RKU update.
- The per-node building blocks (:class:`OpCount` and friends) live in
  the dependency-leaf module :mod:`repro.opcount`, shared with the
  pipeline-IR per-stage derivation (:mod:`repro.pipeline.opcounts`);
  they are re-exported here for the established import paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SolverError
from ..mesh.hexmesh import elements_for_node_count
from ..timeint.butcher import RK4, ButcherTableau

# Re-exported building blocks (see repro.opcount for the definitions).
from ..opcount import (  # noqa: F401  (public re-exports)
    METRIC_VALUES_PER_ELEMENT_CONST,
    NUM_FIELDS,
    NUM_GRADIENT_FIELDS,
    NUM_VISCOUS_FIELDS,
    OpCount,
    euler_flux_per_node,
    gradient_per_node_per_field,
    load_element,
    primitives_per_node,
    store_element,
    tau_per_node,
    viscous_flux_per_node,
    weak_divergence_per_node_per_field,
)

# ---------------------------------------------------------------------------
# Per-element COMPUTE tasks (the paper's Fig. 1 / Fig. 3 stages)
# ---------------------------------------------------------------------------


def compute_convection_element(n1: int) -> OpCount:
    """COMPUTE-convection for one element (no DRAM traffic; on-chip)."""
    q = n1**3
    work = primitives_per_node().scaled(q)
    work = work + euler_flux_per_node().scaled(q)
    work = work + weak_divergence_per_node_per_field(n1).scaled(q * NUM_FIELDS)
    return work


def compute_diffusion_element(n1: int) -> OpCount:
    """COMPUTE-diffusion for one element: gradients, tau, viscous fluxes,
    weak divergences."""
    q = n1**3
    work = primitives_per_node().scaled(q)
    work = work + gradient_per_node_per_field(n1).scaled(q * NUM_GRADIENT_FIELDS)
    work = work + tau_per_node().scaled(q)
    work = work + viscous_flux_per_node().scaled(q)
    work = work + weak_divergence_per_node_per_field(n1).scaled(
        q * NUM_VISCOUS_FIELDS
    )
    return work


# ---------------------------------------------------------------------------
# Per-node global stages (mass inversion, RK combination, RKU update)
# ---------------------------------------------------------------------------


def mass_inversion_per_node() -> OpCount:
    """Divide the 5 assembled residuals by the lumped mass."""
    return OpCount(divs=NUM_FIELDS, dram_reads=NUM_FIELDS + 1, dram_writes=NUM_FIELDS)


def _rk_combination_rows(tableau: ButcherTableau) -> list:
    """The nonzero stage-combination rows one step applies.

    One row per intermediate stage whose tableau coefficients are not
    all zero, plus the final ``b`` combination — each becomes one
    application of the ``rk-update[combine]`` pipeline.
    """
    import numpy as np

    rows = [
        tableau.a[stage, :stage]
        for stage in range(1, tableau.num_stages)
        if np.any(tableau.a[stage, :stage] != 0.0)
    ]
    rows.append(tableau.b)
    return rows


def rk_axpy_per_node(tableau: ButcherTableau) -> OpCount:
    """RK stage combinations for one full step at one node.

    Derived from the :func:`~repro.pipeline.rk_update.rk_update_pipeline`
    IR: every combination row the tableau applies is one pass of the
    combination-only pipeline, whose stage counts
    (:func:`~repro.pipeline.opcounts.stage_op_count`) charge one fused
    multiply-add per field per nonzero entry, stream each referenced
    derivative in, and stream the combined state in and out.
    """
    import numpy as np

    from ..pipeline.opcounts import stage_op_count
    from ..pipeline.rk_update import rk_update_pipeline

    total = OpCount()
    for row in _rk_combination_rows(tableau):
        pipeline = rk_update_pipeline(
            primitives=False, num_terms=int(np.count_nonzero(row))
        )
        for stage in pipeline.topological_order():
            total = total + stage_op_count(stage, 1)
    return total


def rku_update_per_node() -> OpCount:
    """The RKU kernel's primitive update ``rho, u, T, E, p`` at one node.

    Derived from the primitive-update slice of the
    :func:`~repro.pipeline.rk_update.rk_update_pipeline` IR: the
    ``update_primitives`` arithmetic (``u = m / rho``, kinetic, internal
    energy, T, p) plus the node's conserved-set read and primitive-set
    write — so the accelerator's RKU kernel model
    (:mod:`repro.accel.kernels`) prices exactly the stages the solver
    executes.
    """
    from ..pipeline.opcounts import stage_op_count
    from ..pipeline.rk_update import rk_update_pipeline

    pipeline = rk_update_pipeline(primitives=True)
    total = OpCount()
    for name in ("load_state", "update_primitives", "store_primitives"):
        total = total + stage_op_count(pipeline.stage(name), 1)
    return total


def non_rk_per_node() -> OpCount:
    """Host-side work outside the RK method, per node per time step.

    Models the paper's "Non-RK" 23.63 %: CFL signal speed (1 sqrt + a few
    ops), integral diagnostics (one read pass over the conserved set),
    and solution bookkeeping/output staging (read + format + write of the
    primitive and conserved sets — 5 reads of each, 3 staged writes of
    the primitive set).
    """
    return OpCount(
        adds=6,
        muls=8,
        divs=1,
        specials=1,
        dram_reads=5 * NUM_FIELDS,
        dram_writes=3 * NUM_FIELDS,
    )


# ---------------------------------------------------------------------------
# Aggregated workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseWork:
    """One Fig. 2 phase over the full mesh for one time step."""

    name: str
    ops: OpCount

    def scaled(self, factor: float) -> "PhaseWork":
        return PhaseWork(name=self.name, ops=self.ops.scaled(factor))


@dataclass(frozen=True)
class RKWorkload:
    """Per-time-step workload of the whole solver on a given mesh.

    Attributes
    ----------
    num_nodes / num_elements:
        Mesh size the counts are scaled to.
    polynomial_order:
        FEM order ``p``.
    phases:
        Mapping of phase name (``rk_diffusion``, ``rk_convection``,
        ``rk_other``, ``non_rk``) to :class:`PhaseWork` for one time step.
    """

    num_nodes: int
    num_elements: int
    polynomial_order: int
    num_stages: int
    phases: dict[str, PhaseWork] = field(default_factory=dict)

    def total_ops(self) -> OpCount:
        """Sum of all phases."""
        total = OpCount()
        for phase in self.phases.values():
            total = total + phase.ops
        return total

    def rk_ops(self) -> OpCount:
        """Sum of the RK-method phases (the accelerated region)."""
        total = OpCount()
        for name, phase in self.phases.items():
            if name != "non_rk":
                total = total + phase.ops
        return total


def rk_stage_workload(
    num_elements: int, polynomial_order: int, fusion: str = "none"
) -> dict[str, OpCount]:
    """Element-pass work for ONE RK stage, derived from the pipeline IR.

    The counts come from the per-stage op-count models of
    :mod:`repro.pipeline.opcounts` applied to the operator pipeline at
    the requested ``fusion`` level, aggregated by profiler phase — so
    op-accounting prices exactly the stage graph the solver executes and
    the co-simulator streams. With the default ``fusion="none"`` each
    pass performs its own LOAD and STORE (paper Fig. 1: both branches
    begin with LOAD Node and end with STORE Node Contribution), yielding
    the classic ``rk_convection`` / ``rk_diffusion`` split; the fused
    rewrite yields a single ``rk_fused`` phase with the shared-stage
    savings visible in the totals.
    """
    from ..pipeline import navier_stokes_pipeline, pipeline_phase_op_counts

    per_element = pipeline_phase_op_counts(
        navier_stokes_pipeline(fusion), polynomial_order
    )
    return {
        phase.replace(".", "_"): ops.scaled(num_elements)
        for phase, ops in per_element.items()
    }


def full_step_workload(
    num_nodes: int,
    num_elements: int,
    polynomial_order: int,
    tableau: ButcherTableau = RK4,
) -> RKWorkload:
    """Workload of one complete time step on the given mesh."""
    if num_nodes < 1 or num_elements < 1:
        raise SolverError("mesh sizes must be positive")
    stages = tableau.num_stages
    stage = rk_stage_workload(num_elements, polynomial_order)
    rk_other = (
        mass_inversion_per_node().scaled(num_nodes * stages)
        + rk_axpy_per_node(tableau).scaled(num_nodes)
        + rku_update_per_node().scaled(num_nodes)
    )
    phases = {
        "rk_diffusion": PhaseWork(
            "rk_diffusion", stage["rk_diffusion"].scaled(stages)
        ),
        "rk_convection": PhaseWork(
            "rk_convection", stage["rk_convection"].scaled(stages)
        ),
        "rk_other": PhaseWork("rk_other", rk_other),
        "non_rk": PhaseWork("non_rk", non_rk_per_node().scaled(num_nodes)),
    }
    return RKWorkload(
        num_nodes=num_nodes,
        num_elements=num_elements,
        polynomial_order=polynomial_order,
        num_stages=stages,
        phases=phases,
    )


def workload_for_node_count(
    num_nodes: int, polynomial_order: int = 2, tableau: ButcherTableau = RK4
) -> RKWorkload:
    """Workload for a periodic box mesh with ~``num_nodes`` nodes.

    On the periodic TGV mesh of order ``p``, elements number
    ``num_nodes / p**3`` (each element contributes ``p**3`` unique
    nodes); the arithmetic is shared with the accelerator timing models
    via :func:`repro.mesh.hexmesh.elements_for_node_count`.
    """
    if num_nodes < 1:
        raise SolverError("num_nodes must be >= 1")
    num_elements = elements_for_node_count(num_nodes, polynomial_order)
    return full_step_workload(num_nodes, num_elements, polynomial_order, tableau)
