"""The FEM spatial operator for the compressible Navier-Stokes equations.

This is the computational core the paper accelerates, organized exactly
as its Fig. 1 dataflow graph — and, since the operator-pipeline IR
refactor, *declared* as one: the operator builds an
:class:`~repro.pipeline.ir.OperatorPipeline` instance for its fusion
level and executes it functionally
(:func:`~repro.pipeline.executor.run_pipeline`). The same IR instance is
what the accelerator co-simulator streams real elements through and what
the workload characterization derives its per-stage operation counts
from.

Every kernel on this path — gather, gradients, weak divergences,
scatter-add — routes through a pluggable :class:`~repro.backend.KernelBackend`
(select with the ``backend`` argument, ``SolverConfig.backend``, or the
``REPRO_BACKEND`` environment variable), the software analogue of the
paper's retargetable dataflow.

Three fusion levels control how much of the Fig. 1 round-trip the two
passes share (``fusion=``); each is a *graph rewrite* of the base
pipeline (:mod:`repro.pipeline.rewrites`), not a separate code path:

- ``"none"`` — independent gather/scatter per pass, mirroring the
  paper's profiled C++ (whose diffusion and convection functions are
  independent, which is also what lets the accelerator merge them);
- ``"gather"`` — one shared gather, separate scatters (the historical
  ``fused=True`` mode);
- ``"full"`` — one gather, the convective and viscous fluxes combined
  per node, one weak divergence and one scatter-add for the summed
  residual: the software analogue of the accelerator's merged
  diffusion+convection COMPUTE module. Fastest; phase attribution of the
  shared stages degrades to RK(Other).
"""

from __future__ import annotations

import numpy as np

from ..backend import KernelBackend, get_backend
from ..errors import SolverError
from ..fem.assembly import lumped_mass
from ..precision.modes import PrecisionPolicy
from ..fem.geometry import compute_geometry
from ..fem.reference import reference_hex
from ..mesh.hexmesh import HexMesh
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED, FlowState
from ..pipeline import (
    PipelineContext,
    assembled_total,
    element_residuals,
    navier_stokes_pipeline,
    run_pipeline,
)
from .profiler import PhaseProfiler

#: Valid values of the ``fusion`` parameter.
FUSION_MODES = ("none", "gather", "full")


class NavierStokesOperator:
    """Semi-discrete right-hand side ``dq/dt = L(q)`` on a hex mesh.

    Parameters
    ----------
    mesh:
        The spectral-element mesh (periodic for the TGV case).
    gas:
        Working-fluid properties.
    profiler:
        Optional :class:`PhaseProfiler`; phases ``rk.diffusion``,
        ``rk.convection`` and ``rk.other`` are attributed per pipeline
        stage as in the paper's Fig. 2.
    fused:
        Back-compat alias: ``fused=True`` selects ``fusion="gather"``.
    fusion:
        One of :data:`FUSION_MODES`; overrides ``fused`` when given.
    backend:
        Compute backend for the hot kernels: a name (``"reference"``,
        ``"fast"``, ``"threaded"``, ``"procs"``), a
        :class:`~repro.backend.KernelBackend` instance, or ``None`` for
        the environment/default selection.
    num_workers:
        Worker count for the parallel backends; ``None`` defers to the
        ``REPRO_NUM_WORKERS`` environment variable, then the CPU count.
        Ignored by serial backends.
    dtype:
        Precision mode for the hot path: ``"float64"`` (the oracle),
        ``"float32"`` (device-faithful, including f32 scatter
        accumulation), or ``"mixed"`` (f32 streams, f64 accumulation —
        the accelerator's DSP accumulator model). ``None`` defers to
        the ``REPRO_DTYPE`` environment variable, then ``"float64"``.
        A :class:`~repro.precision.modes.PrecisionPolicy` is accepted
        too.
    """

    def __init__(
        self,
        mesh: HexMesh,
        gas: GasProperties,
        profiler: PhaseProfiler | None = None,
        fused: bool = False,
        fusion: str | None = None,
        backend: str | KernelBackend | None = None,
        num_workers: int | None = None,
        dtype: str | PrecisionPolicy | None = None,
    ) -> None:
        self.mesh = mesh
        self.gas = gas
        if fusion is None:
            fusion = "gather" if fused else "none"
        if fusion not in FUSION_MODES:
            raise SolverError(
                f"fusion must be one of {FUSION_MODES}, got {fusion!r}"
            )
        self.fusion = fusion
        if dtype is None and isinstance(backend, KernelBackend):
            # A pre-built backend carries its own policy; stay coherent
            # with it rather than re-resolving the environment default.
            self.precision = backend.precision
        else:
            self.precision = PrecisionPolicy.resolve(dtype)
        self.backend = get_backend(
            backend, num_workers=num_workers, precision=self.precision
        )
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.ref = reference_hex(mesh.polynomial_order)
        self.geom = compute_geometry(mesh.corner_coords, self.ref)
        self.mass = lumped_mass(
            mesh.connectivity, mesh.num_nodes, self.geom, self.ref
        )
        # Storage-dtype mass so float32 residuals are mass-inverted in
        # float32 (dividing by the float64 mass would silently upcast).
        self._mass_storage = self.mass.astype(
            self.precision.storage, copy=False
        )
        #: The declarative stage graph this operator executes.
        self.pipeline = navier_stokes_pipeline(fusion)
        self._ctx = PipelineContext.from_operator(self)
        # Wall-bounded meshes (any non-periodic axis) get strongly
        # enforced no-slip isothermal walls: momentum and energy are held
        # at the wall values by zeroing their residuals on wall nodes.
        if mesh.periodic:
            self.wall_nodes: np.ndarray = np.empty(0, dtype=np.int64)
        else:
            from ..mesh.boundary import tag_box_boundaries

            tags = tag_box_boundaries(mesh)
            self.wall_nodes = np.nonzero(tags != 0)[0]

    @property
    def fused(self) -> bool:
        """Back-compat: whether any gather sharing is active."""
        return self.fusion != "none"

    # -- element-pass diagnostics (compute-only pipeline execution) ----------

    def convection_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Per-element convection residuals ``-div F_c`` (weak), ``(5, E, Q)``.

        Executes the convection branch of the unfused pipeline on an
        already gathered element state.
        """
        return element_residuals(
            navier_stokes_pipeline("none"),
            self._ctx,
            state_elem,
            phases=("rk.convection",),
        )

    def diffusion_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Per-element diffusion residuals ``+div F_v`` (weak), ``(5, E, Q)``.

        Executes the diffusion branch — node gradients of velocity and
        temperature, the stress tensor ``tau``, and the viscous/heat
        fluxes (the 2a/2b/2c node stages of the paper's Fig. 3); the
        mass row has no viscous flux and stays exactly zero.
        """
        return element_residuals(
            navier_stokes_pipeline("none"),
            self._ctx,
            state_elem,
            phases=("rk.diffusion",),
        )

    def fused_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Convection + diffusion residuals in one pass, ``(5, E, Q)``.

        Executes the fully fused pipeline's compute stages: combined
        fluxes per node and a *single* weak divergence per conserved
        field (5 instead of 9). Linearity of the weak divergence makes
        this exactly the sum of the two separate passes (up to rounding).
        """
        return element_residuals(
            navier_stokes_pipeline("full"), self._ctx, state_elem
        )

    # -- global residual ------------------------------------------------------

    def _gather_state(self, stacked: np.ndarray) -> np.ndarray:
        """LOAD-element: ``(5, N)`` global state to ``(5, E, Q)`` local."""
        return self.backend.gather(stacked, self.mesh.connectivity)

    def finalize_residual(self, assembled: np.ndarray) -> np.ndarray:
        """Mass inversion + wall conditions on an assembled ``(5, N)`` sum.

        Shared by :meth:`residual` and the streaming co-simulation so
        both finish the element pipeline identically. The diagonal
        lumped mass is inverted pointwise; on wall-bounded meshes the
        no-slip isothermal conditions pin momentum and energy (their
        residuals vanish on wall nodes) while density evolves freely
        (zero normal mass flux holds because the wall velocity is zero).
        """
        with self.profiler.phase("rk.other"):
            mass = (
                self._mass_storage
                if assembled.dtype == self._mass_storage.dtype
                else self.mass
            )
            rhs = assembled / mass[None, :]
            if self.wall_nodes.size:
                rhs[1:, self.wall_nodes] = 0.0
        return rhs

    def residual(self, stacked: np.ndarray) -> np.ndarray:
        """Full right-hand side ``dq/dt`` for the stacked state ``(5, N)``.

        Executes the operator's pipeline instance functionally. With
        ``fusion="none"`` / ``"gather"`` the diffusion and convection
        contributions are computed by independent element passes (as
        profiled in the paper) and summed after assembly; with
        ``fusion="full"`` one combined pass shares a single
        gather/divergence/scatter round-trip.
        """
        stacked = np.asarray(stacked, dtype=self.precision.storage)
        if stacked.shape != (NUM_CONSERVED, self.mesh.num_nodes):
            raise SolverError(
                f"state must be (5, {self.mesh.num_nodes}), got {stacked.shape}"
            )
        outputs = run_pipeline(
            self.pipeline, self._ctx, {"state": stacked}, profiler=self.profiler
        )
        return self.finalize_residual(assembled_total(outputs))

    # -- diagnostics support ---------------------------------------------------

    def nodal_velocity_gradient(self, state: FlowState) -> np.ndarray:
        """Mass-averaged nodal velocity gradient, shape ``(N, 3, 3)``.

        Element-discontinuous gradients are made single-valued by
        mass-weighted averaging (the standard SEM projection); used by the
        vorticity/enstrophy diagnostics.
        """
        velocity = state.velocity()
        conn = self.mesh.connectivity
        num_nodes = self.mesh.num_nodes
        scale = self.geom.quadrature_scale(self.ref)
        backend = self.backend
        out = np.empty((num_nodes, 3, 3))
        vel_elem = backend.gather(velocity, conn)  # (3, E, Q)
        grads = backend.physical_gradient_many(vel_elem, self.geom, self.ref)
        for i in range(3):
            weighted = backend.scatter_add_many(
                np.moveaxis(grads[i], -1, 0) * scale[None],
                conn,
                num_nodes,
            )
            out[:, i, :] = weighted.T / self.mass[:, None]
        return out

    def stable_dt_inputs(self, state: FlowState) -> tuple[float, float]:
        """``(min GLL spacing, max wave speed)`` for the CFL controller."""
        from ..mesh.metrics import element_min_spacing

        spacing = float(element_min_spacing(self.mesh).min())
        wave = state.max_wave_speed(self.gas)
        return spacing, wave
