"""The FEM spatial operator for the compressible Navier-Stokes equations.

This is the computational core the paper accelerates, organized exactly as
its Fig. 1 dataflow graph:

- the **Convection** pass: LOAD element -> (per node) compute the Euler
  fluxes and their weak-divergence residuals -> STORE contribution;
- the **Diffusion** pass: LOAD element -> (per node) compute gradients,
  the viscous stress ``tau``, the viscous/heat fluxes and their
  weak-divergence residuals -> STORE contribution.

Every kernel on this path — gather, gradients, weak divergences,
scatter-add — routes through a pluggable :class:`~repro.backend.KernelBackend`
(select with the ``backend`` argument, ``SolverConfig.backend``, or the
``REPRO_BACKEND`` environment variable), the software analogue of the
paper's retargetable dataflow.

Three fusion levels control how much of the Fig. 1 round-trip the two
passes share (``fusion=``):

- ``"none"`` — independent gather/scatter per pass, mirroring the
  paper's profiled C++ (whose diffusion and convection functions are
  independent, which is also what lets the accelerator merge them);
- ``"gather"`` — one shared gather, separate scatters (the historical
  ``fused=True`` mode);
- ``"full"`` — one gather, the convective and viscous fluxes combined
  per node, one weak divergence and one scatter-add for the summed
  residual: the software analogue of the accelerator's merged
  diffusion+convection COMPUTE module. Fastest; phase attribution of the
  shared stages degrades to RK(Other).
"""

from __future__ import annotations

import numpy as np

from ..backend import KernelBackend, get_backend
from ..errors import SolverError
from ..fem.assembly import lumped_mass
from ..fem.geometry import compute_geometry
from ..fem.reference import reference_hex
from ..mesh.hexmesh import HexMesh
from ..physics.fluxes import combined_rhs_fluxes, convective_fluxes, viscous_fluxes
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED, FlowState
from .profiler import PhaseProfiler

#: Valid values of the ``fusion`` parameter.
FUSION_MODES = ("none", "gather", "full")


class NavierStokesOperator:
    """Semi-discrete right-hand side ``dq/dt = L(q)`` on a hex mesh.

    Parameters
    ----------
    mesh:
        The spectral-element mesh (periodic for the TGV case).
    gas:
        Working-fluid properties.
    profiler:
        Optional :class:`PhaseProfiler`; phases ``rk.diffusion``,
        ``rk.convection`` and ``rk.other`` are attributed as in the
        paper's Fig. 2.
    fused:
        Back-compat alias: ``fused=True`` selects ``fusion="gather"``.
    fusion:
        One of :data:`FUSION_MODES`; overrides ``fused`` when given.
    backend:
        Compute backend for the hot kernels: a name (``"reference"``,
        ``"fast"``), a :class:`~repro.backend.KernelBackend` instance, or
        ``None`` for the environment/default selection.
    """

    def __init__(
        self,
        mesh: HexMesh,
        gas: GasProperties,
        profiler: PhaseProfiler | None = None,
        fused: bool = False,
        fusion: str | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.mesh = mesh
        self.gas = gas
        if fusion is None:
            fusion = "gather" if fused else "none"
        if fusion not in FUSION_MODES:
            raise SolverError(
                f"fusion must be one of {FUSION_MODES}, got {fusion!r}"
            )
        self.fusion = fusion
        self.backend = get_backend(backend)
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.ref = reference_hex(mesh.polynomial_order)
        self.geom = compute_geometry(mesh.corner_coords, self.ref)
        self.mass = lumped_mass(
            mesh.connectivity, mesh.num_nodes, self.geom, self.ref
        )
        # Wall-bounded meshes (any non-periodic axis) get strongly
        # enforced no-slip isothermal walls: momentum and energy are held
        # at the wall values by zeroing their residuals on wall nodes.
        if mesh.periodic:
            self.wall_nodes: np.ndarray = np.empty(0, dtype=np.int64)
        else:
            from ..mesh.boundary import tag_box_boundaries

            tags = tag_box_boundaries(mesh)
            self.wall_nodes = np.nonzero(tags != 0)[0]

    @property
    def fused(self) -> bool:
        """Back-compat: whether any gather sharing is active."""
        return self.fusion != "none"

    # -- element-local physics ----------------------------------------------

    def _element_primitives(
        self, state_elem: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Primitive fields per element node from gathered conservatives.

        ``state_elem`` is ``(5, E, Q)``; returns
        ``(rho, velocity(3, E, Q), pressure, temperature, total_energy)``.
        This is the node-level LOAD stage of Fig. 1.
        """
        rho = state_elem[0]
        momentum = state_elem[1:4]
        total_energy = state_elem[4]
        velocity = momentum / rho[None]
        kinetic = 0.5 * np.sum(momentum * velocity, axis=0)
        internal = total_energy - kinetic
        pressure = (self.gas.gamma - 1.0) * internal
        temperature = internal / (rho * self.gas.cv)
        return rho, velocity, pressure, temperature, total_energy

    def _viscous_element_fluxes(self, velocity: np.ndarray, temperature: np.ndarray):
        """Viscous/heat :class:`FluxSet` from the batched node gradients.

        Computes the gradients of the three velocity components and the
        temperature in one backend call (COMPUTE-Gradients in Fig. 1),
        then the stress tensor and fluxes (stages 2a/2b/2c of Fig. 3).
        """
        fields = np.concatenate([velocity, temperature[None]], axis=0)
        grads = self.backend.physical_gradient_many(fields, self.geom, self.ref)
        grad_u = np.moveaxis(grads[:3], 0, 2)  # (E, Q, i, j) = du_i/dx_j
        grad_t = grads[3]
        return viscous_fluxes(velocity, grad_u, grad_t, self.gas)

    def convection_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Per-element convection residuals ``-div F_c`` (weak), ``(5, E, Q)``."""
        rho, velocity, pressure, _temperature, total_energy = (
            self._element_primitives(state_elem)
        )
        fluxes = convective_fluxes(rho, velocity, pressure, total_energy)
        return -self.backend.weak_divergence_many(
            fluxes.stacked(), self.geom, self.ref
        )

    def diffusion_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Per-element diffusion residuals ``+div F_v`` (weak), ``(5, E, Q)``.

        Computes the node gradients of velocity and temperature, the
        stress tensor ``tau``, and the viscous/heat fluxes — the 2a/2b/2c
        node stages of the paper's Fig. 3.
        """
        _rho, velocity, _pressure, temperature, _total_energy = (
            self._element_primitives(state_elem)
        )
        fluxes = self._viscous_element_fluxes(velocity, temperature)
        num_elem, nodes = temperature.shape
        out = np.zeros((NUM_CONSERVED, num_elem, nodes))
        # The mass equation has no viscous flux; only momentum + energy
        # divergences are computed.
        stacked = np.stack(
            [fluxes.momentum[..., i, :] for i in range(3)] + [fluxes.energy]
        )
        out[1:] = self.backend.weak_divergence_many(stacked, self.geom, self.ref)
        return out

    def fused_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Convection + diffusion residuals in one pass, ``(5, E, Q)``.

        Combines the convective and viscous fluxes per node and takes a
        *single* weak divergence per conserved field (5 instead of 9),
        the element-level arithmetic sharing of the accelerator's merged
        COMPUTE module. Linearity of the weak divergence makes this
        exactly the sum of the two separate passes (up to rounding).
        """
        rho, velocity, pressure, temperature, total_energy = (
            self._element_primitives(state_elem)
        )
        conv = convective_fluxes(rho, velocity, pressure, total_energy)
        visc = self._viscous_element_fluxes(velocity, temperature)
        net = combined_rhs_fluxes(conv, visc)
        return -self.backend.weak_divergence_many(
            net.stacked(), self.geom, self.ref
        )

    # -- global residual ------------------------------------------------------

    def _gather_state(self, stacked: np.ndarray) -> np.ndarray:
        """LOAD-element: ``(5, N)`` global state to ``(5, E, Q)`` local."""
        return self.backend.gather(stacked, self.mesh.connectivity)

    def _scatter_residuals(self, element_res: np.ndarray) -> np.ndarray:
        """STORE-element-contribution: accumulate ``(5, E, Q)`` to ``(5, N)``."""
        return self.backend.scatter_add_many(
            element_res, self.mesh.connectivity, self.mesh.num_nodes
        )

    def residual(self, stacked: np.ndarray) -> np.ndarray:
        """Full right-hand side ``dq/dt`` for the stacked state ``(5, N)``.

        With ``fusion="none"`` / ``"gather"`` the diffusion and
        convection contributions are computed by independent element
        passes (as profiled in the paper) and summed after assembly; with
        ``fusion="full"`` one combined pass shares a single
        gather/divergence/scatter round-trip. The diagonal lumped mass is
        inverted pointwise either way.
        """
        stacked = np.asarray(stacked, dtype=np.float64)
        if stacked.shape != (NUM_CONSERVED, self.mesh.num_nodes):
            raise SolverError(
                f"state must be (5, {self.mesh.num_nodes}), got {stacked.shape}"
            )
        prof = self.profiler
        if self.fusion == "full":
            # Shared stages cannot be split between the paper's Diffusion
            # and Convection categories; rk.fused counts as RK(Other).
            with prof.phase("rk.fused"):
                state_elem = self._gather_state(stacked)
                total = self._scatter_residuals(
                    self.fused_element_residuals(state_elem)
                )
        elif self.fusion == "gather":
            with prof.phase("rk.other"):
                state_elem = self._gather_state(stacked)
            with prof.phase("rk.convection"):
                conv = self._scatter_residuals(
                    self.convection_element_residuals(state_elem)
                )
            with prof.phase("rk.diffusion"):
                diff = self._scatter_residuals(
                    self.diffusion_element_residuals(state_elem)
                )
        else:
            with prof.phase("rk.convection"):
                state_elem = self._gather_state(stacked)
                conv = self._scatter_residuals(
                    self.convection_element_residuals(state_elem)
                )
            with prof.phase("rk.diffusion"):
                state_elem = self._gather_state(stacked)
                diff = self._scatter_residuals(
                    self.diffusion_element_residuals(state_elem)
                )
        with prof.phase("rk.other"):
            if self.fusion == "full":
                rhs = total / self.mass[None, :]
            else:
                rhs = (conv + diff) / self.mass[None, :]
            if self.wall_nodes.size:
                # No-slip isothermal walls: u and T (hence momentum and
                # total energy) are prescribed, so their residuals vanish;
                # density evolves freely (zero normal mass flux holds
                # because the wall velocity is zero).
                rhs[1:, self.wall_nodes] = 0.0
        return rhs

    # -- diagnostics support ---------------------------------------------------

    def nodal_velocity_gradient(self, state: FlowState) -> np.ndarray:
        """Mass-averaged nodal velocity gradient, shape ``(N, 3, 3)``.

        Element-discontinuous gradients are made single-valued by
        mass-weighted averaging (the standard SEM projection); used by the
        vorticity/enstrophy diagnostics.
        """
        velocity = state.velocity()
        conn = self.mesh.connectivity
        num_nodes = self.mesh.num_nodes
        scale = self.geom.quadrature_scale(self.ref)
        backend = self.backend
        out = np.empty((num_nodes, 3, 3))
        vel_elem = backend.gather(velocity, conn)  # (3, E, Q)
        grads = backend.physical_gradient_many(vel_elem, self.geom, self.ref)
        for i in range(3):
            weighted = backend.scatter_add_many(
                np.moveaxis(grads[i], -1, 0) * scale[None],
                conn,
                num_nodes,
            )
            out[:, i, :] = weighted.T / self.mass[:, None]
        return out

    def stable_dt_inputs(self, state: FlowState) -> tuple[float, float]:
        """``(min GLL spacing, max wave speed)`` for the CFL controller."""
        from ..mesh.metrics import element_min_spacing

        spacing = float(element_min_spacing(self.mesh).min())
        wave = state.max_wave_speed(self.gas)
        return spacing, wave
