"""The FEM spatial operator for the compressible Navier-Stokes equations.

This is the computational core the paper accelerates, organized exactly as
its Fig. 1 dataflow graph:

- the **Convection** pass: LOAD element -> (per node) compute the Euler
  fluxes and their weak-divergence residuals -> STORE contribution;
- the **Diffusion** pass: LOAD element -> (per node) compute gradients,
  the viscous stress ``tau``, the viscous/heat fluxes and their
  weak-divergence residuals -> STORE contribution.

Each pass performs its own gather and scatter-add, mirroring the paper's
profiled C++ (whose diffusion and convection functions are independent,
which is also what lets the accelerator merge them for hardware reuse).
A ``fused`` mode shares one gather between the passes — the software
analogue of that merge — used where wall-clock matters more than
attribution fidelity.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..fem.assembly import gather, lumped_mass, scatter_add
from ..fem.geometry import compute_geometry
from ..fem.operators import physical_gradient, weak_divergence
from ..fem.reference import reference_hex
from ..mesh.hexmesh import HexMesh
from ..physics.fluxes import convective_fluxes, viscous_fluxes
from ..physics.gas import GasProperties
from ..physics.state import NUM_CONSERVED, FlowState
from .profiler import PhaseProfiler


class NavierStokesOperator:
    """Semi-discrete right-hand side ``dq/dt = L(q)`` on a hex mesh.

    Parameters
    ----------
    mesh:
        The spectral-element mesh (periodic for the TGV case).
    gas:
        Working-fluid properties.
    profiler:
        Optional :class:`PhaseProfiler`; phases ``rk.diffusion``,
        ``rk.convection`` and ``rk.other`` are attributed as in the
        paper's Fig. 2.
    fused:
        Share one gather between the diffusion and convection passes.
    """

    def __init__(
        self,
        mesh: HexMesh,
        gas: GasProperties,
        profiler: PhaseProfiler | None = None,
        fused: bool = False,
    ) -> None:
        self.mesh = mesh
        self.gas = gas
        self.fused = fused
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        self.ref = reference_hex(mesh.polynomial_order)
        self.geom = compute_geometry(mesh.corner_coords, self.ref)
        self.mass = lumped_mass(
            mesh.connectivity, mesh.num_nodes, self.geom, self.ref
        )
        # Wall-bounded meshes (any non-periodic axis) get strongly
        # enforced no-slip isothermal walls: momentum and energy are held
        # at the wall values by zeroing their residuals on wall nodes.
        if mesh.periodic:
            self.wall_nodes: np.ndarray = np.empty(0, dtype=np.int64)
        else:
            from ..mesh.boundary import tag_box_boundaries

            tags = tag_box_boundaries(mesh)
            self.wall_nodes = np.nonzero(tags != 0)[0]

    # -- element-local physics ----------------------------------------------

    def _element_primitives(
        self, state_elem: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Primitive fields per element node from gathered conservatives.

        ``state_elem`` is ``(5, E, Q)``; returns
        ``(rho, velocity(3, E, Q), pressure, temperature, total_energy)``.
        This is the node-level LOAD stage of Fig. 1.
        """
        rho = state_elem[0]
        momentum = state_elem[1:4]
        total_energy = state_elem[4]
        velocity = momentum / rho[None]
        kinetic = 0.5 * np.sum(momentum * velocity, axis=0)
        internal = total_energy - kinetic
        pressure = (self.gas.gamma - 1.0) * internal
        temperature = internal / (rho * self.gas.cv)
        return rho, velocity, pressure, temperature, total_energy

    def convection_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Per-element convection residuals ``-div F_c`` (weak), ``(5, E, Q)``."""
        rho, velocity, pressure, _temperature, total_energy = (
            self._element_primitives(state_elem)
        )
        fluxes = convective_fluxes(rho, velocity, pressure, total_energy)
        num_elem, nodes = rho.shape
        out = np.empty((NUM_CONSERVED, num_elem, nodes))
        out[0] = -weak_divergence(fluxes.mass, self.geom, self.ref)
        for i in range(3):
            out[1 + i] = -weak_divergence(
                fluxes.momentum[..., i, :], self.geom, self.ref
            )
        out[4] = -weak_divergence(fluxes.energy, self.geom, self.ref)
        return out

    def diffusion_element_residuals(self, state_elem: np.ndarray) -> np.ndarray:
        """Per-element diffusion residuals ``+div F_v`` (weak), ``(5, E, Q)``.

        Computes the node gradients of velocity and temperature, the
        stress tensor ``tau``, and the viscous/heat fluxes — the 2a/2b/2c
        node stages of the paper's Fig. 3.
        """
        _rho, velocity, _pressure, temperature, _total_energy = (
            self._element_primitives(state_elem)
        )
        num_elem, nodes = temperature.shape
        grad_u = np.empty((num_elem, nodes, 3, 3))
        for i in range(3):
            grad_u[:, :, i, :] = physical_gradient(velocity[i], self.geom, self.ref)
        grad_t = physical_gradient(temperature, self.geom, self.ref)
        fluxes = viscous_fluxes(velocity, grad_u, grad_t, self.gas)
        out = np.zeros((NUM_CONSERVED, num_elem, nodes))
        for i in range(3):
            out[1 + i] = weak_divergence(
                fluxes.momentum[..., i, :], self.geom, self.ref
            )
        out[4] = weak_divergence(fluxes.energy, self.geom, self.ref)
        return out

    # -- global residual ------------------------------------------------------

    def _gather_state(self, stacked: np.ndarray) -> np.ndarray:
        """LOAD-element: ``(5, N)`` global state to ``(5, E, Q)`` local."""
        return gather(stacked, self.mesh.connectivity)

    def _scatter_residuals(self, element_res: np.ndarray) -> np.ndarray:
        """STORE-element-contribution: accumulate ``(5, E, Q)`` to ``(5, N)``."""
        out = np.empty((NUM_CONSERVED, self.mesh.num_nodes))
        for f_idx in range(NUM_CONSERVED):
            out[f_idx] = scatter_add(
                element_res[f_idx], self.mesh.connectivity, self.mesh.num_nodes
            )
        return out

    def residual(self, stacked: np.ndarray) -> np.ndarray:
        """Full right-hand side ``dq/dt`` for the stacked state ``(5, N)``.

        The diffusion and convection contributions are computed by
        independent element passes (as profiled in the paper) and summed
        after assembly; the diagonal lumped mass is inverted pointwise.
        """
        stacked = np.asarray(stacked, dtype=np.float64)
        if stacked.shape != (NUM_CONSERVED, self.mesh.num_nodes):
            raise SolverError(
                f"state must be (5, {self.mesh.num_nodes}), got {stacked.shape}"
            )
        prof = self.profiler
        if self.fused:
            with prof.phase("rk.other"):
                state_elem = self._gather_state(stacked)
            with prof.phase("rk.convection"):
                conv = self._scatter_residuals(
                    self.convection_element_residuals(state_elem)
                )
            with prof.phase("rk.diffusion"):
                diff = self._scatter_residuals(
                    self.diffusion_element_residuals(state_elem)
                )
        else:
            with prof.phase("rk.convection"):
                state_elem = self._gather_state(stacked)
                conv = self._scatter_residuals(
                    self.convection_element_residuals(state_elem)
                )
            with prof.phase("rk.diffusion"):
                state_elem = self._gather_state(stacked)
                diff = self._scatter_residuals(
                    self.diffusion_element_residuals(state_elem)
                )
        with prof.phase("rk.other"):
            rhs = (conv + diff) / self.mass[None, :]
            if self.wall_nodes.size:
                # No-slip isothermal walls: u and T (hence momentum and
                # total energy) are prescribed, so their residuals vanish;
                # density evolves freely (zero normal mass flux holds
                # because the wall velocity is zero).
                rhs[1:, self.wall_nodes] = 0.0
        return rhs

    # -- diagnostics support ---------------------------------------------------

    def nodal_velocity_gradient(self, state: FlowState) -> np.ndarray:
        """Mass-averaged nodal velocity gradient, shape ``(N, 3, 3)``.

        Element-discontinuous gradients are made single-valued by
        mass-weighted averaging (the standard SEM projection); used by the
        vorticity/enstrophy diagnostics.
        """
        velocity = state.velocity()
        conn = self.mesh.connectivity
        num_nodes = self.mesh.num_nodes
        scale = self.geom.quadrature_scale(self.ref)
        out = np.empty((num_nodes, 3, 3))
        for i in range(3):
            vel_elem = gather(velocity[i], conn)
            grad = physical_gradient(vel_elem, self.geom, self.ref)  # (E, Q, 3)
            for j in range(3):
                weighted = scatter_add(grad[:, :, j] * scale, conn, num_nodes)
                out[:, i, j] = weighted / self.mass
        return out

    def stable_dt_inputs(self, state: FlowState) -> tuple[float, float]:
        """``(min GLL spacing, max wave speed)`` for the CFL controller."""
        from ..mesh.metrics import element_min_spacing

        spacing = float(element_min_spacing(self.mesh).min())
        wave = state.max_wave_speed(self.gas)
        return spacing, wave
